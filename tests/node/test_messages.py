"""Unit tests for the wire messages."""

import pytest

from repro.errors import EncodingError
from repro.node.messages import (
    BatchQueryRequest,
    BatchQueryResponse,
    HeadersRequest,
    HeadersResponse,
    QueryRequest,
    QueryResponse,
)
from repro.query.batch import answer_batch_query
from repro.query.prover import answer_query


class TestQueryRequest:
    def test_roundtrip(self):
        request = QueryRequest("1SomeAddress")
        assert QueryRequest.deserialize(request.serialize()).address == (
            "1SomeAddress"
        )

    def test_wrong_tag_rejected(self):
        with pytest.raises(EncodingError):
            QueryRequest.deserialize(b"\x63\x01a")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(EncodingError):
            QueryRequest.deserialize(QueryRequest("1a").serialize() + b"!")


class TestQueryResponse:
    def test_roundtrip(self, lvq_system, probe_addresses):
        config = lvq_system.config
        result = answer_query(lvq_system, probe_addresses["Addr3"])
        response = QueryResponse(result)
        restored = QueryResponse.deserialize(response.serialize(config), config)
        assert restored.result.serialize(config) == result.serialize(config)

    def test_wrong_tag_rejected(self, lvq_system):
        with pytest.raises(EncodingError):
            QueryResponse.deserialize(b"\x63abc", lvq_system.config)

    def test_empty_rejected(self, lvq_system):
        with pytest.raises(EncodingError):
            QueryResponse.deserialize(b"", lvq_system.config)


class TestBatchMessages:
    def test_request_roundtrip(self):
        request = BatchQueryRequest(["1a", "1b"], 3, 9)
        restored = BatchQueryRequest.deserialize(request.serialize())
        assert restored.addresses == ["1a", "1b"]
        assert (restored.first_height, restored.last_height) == (3, 9)

    def test_request_validation(self):
        with pytest.raises(EncodingError):
            BatchQueryRequest([])
        with pytest.raises(EncodingError):
            BatchQueryRequest(["1a"], 0, 0)

    def test_response_roundtrip(self, lvq_system, probe_addresses):
        config = lvq_system.config
        addresses = list(probe_addresses.values())[:2]
        batch = answer_batch_query(lvq_system, addresses)
        response = BatchQueryResponse(batch)
        restored = BatchQueryResponse.deserialize(
            response.serialize(config), config
        )
        assert restored.batch.serialize(config) == batch.serialize(config)

    def test_response_wrong_tag(self, lvq_system):
        with pytest.raises(EncodingError):
            BatchQueryResponse.deserialize(b"\x63abc", lvq_system.config)

    def test_full_node_handles_batch_rpc(self, lvq_system, probe_addresses):
        from repro.node.full_node import FullNode
        from repro.node.light_node import LightNode

        full_node = FullNode(lvq_system)
        light_node = LightNode.from_full_node(full_node)
        addresses = list(probe_addresses.values())[:3]
        histories = light_node.query_batch(full_node, addresses)
        assert set(histories) == set(addresses)


class TestHeadersMessages:
    def test_request_roundtrip(self):
        request = HeadersRequest(17)
        assert HeadersRequest.deserialize(request.serialize()).from_height == 17

    def test_request_negative_rejected(self):
        with pytest.raises(EncodingError):
            HeadersRequest(-1)

    def test_response_roundtrip(self, lvq_system):
        headers = lvq_system.headers()
        response = HeadersResponse(0, headers)
        restored = HeadersResponse.deserialize(
            response.serialize(), extension_kind=3
        )
        assert restored.from_height == 0
        assert len(restored.headers) == len(headers)
        for original, parsed in zip(headers, restored.headers):
            assert parsed == original
            assert parsed.block_id() == original.block_id()

    def test_response_roundtrip_strawman(self, strawman_system):
        headers = strawman_system.headers()[:5]
        response = HeadersResponse(3, headers)
        restored = HeadersResponse.deserialize(
            response.serialize(), extension_kind=2
        )
        assert restored.headers == headers

    def test_response_size_reflects_extension(
        self, lvq_system, strawman_system
    ):
        lvq_bytes = len(HeadersResponse(0, lvq_system.headers()).serialize())
        straw_bytes = len(
            HeadersResponse(0, strawman_system.headers()).serialize()
        )
        # LVQ headers are 144B vs 112B for the bf-hash strawman variant.
        assert lvq_bytes > straw_bytes
