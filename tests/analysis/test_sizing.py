"""Tests for the sizing/scaling helpers."""

import pytest

from repro.analysis.sizing import (
    PAPER_ADDRESSES_PER_BLOCK,
    header_overhead_per_block,
    paper_equivalent_bf_bytes,
    predicted_absent_result_bytes,
    storage_table,
)
from repro.chain.block import BASE_HEADER_SIZE


class TestPaperEquivalentBf:
    def test_full_scale_identity(self):
        assert paper_equivalent_bf_bytes(10, PAPER_ADDRESSES_PER_BLOCK) == 10 * 1024

    def test_preserves_bits_per_element(self):
        ours = paper_equivalent_bf_bytes(10, 128)
        paper_ratio = 10 * 1024 * 8 / PAPER_ADDRESSES_PER_BLOCK
        our_ratio = ours * 8 / 128
        assert our_ratio == pytest.approx(paper_ratio, rel=0.1)

    def test_word_aligned(self):
        for kib in (10, 30, 100, 500):
            assert paper_equivalent_bf_bytes(kib, 100) % 64 == 0

    def test_monotone(self):
        sizes = [paper_equivalent_bf_bytes(kib, 128) for kib in (10, 30, 100, 500)]
        assert sizes == sorted(sizes)
        assert sizes[0] >= 64

    def test_validation(self):
        with pytest.raises(ValueError):
            paper_equivalent_bf_bytes(0, 100)
        with pytest.raises(ValueError):
            paper_equivalent_bf_bytes(10, 0)


class TestPredictedResultSize:
    def test_scales_with_endpoints(self):
        # Bigger filters (fewer endpoints) should not explode the estimate.
        small = predicted_absent_result_bytes(256, 256, 50, 512, 3)
        assert small > 0

    def test_more_blocks_more_bytes(self):
        a = predicted_absent_result_bytes(64, 64, 50, 512, 3)
        b = predicted_absent_result_bytes(512, 512, 50, 512, 3)
        assert b > a

    def test_matches_measurement_within_factor(self, workload):
        """Model vs the real LVQ result for the absent probe: same order
        of magnitude (the model is explanatory, not byte-exact)."""
        from repro.query.builder import build_system
        from repro.query.config import SystemConfig
        from repro.query.prover import answer_query

        config = SystemConfig.lvq(bf_bytes=192, segment_len=16)
        system = build_system(workload.bodies, config)
        address = workload.probe_addresses["Addr1"]
        measured = answer_query(system, address).size_bytes(config)
        # Estimate items per block from the chain itself.
        items = len(system.chain.block_at(5).unique_addresses())
        predicted = predicted_absent_result_bytes(
            system.tip_height, 16, items, config.bf_bytes, config.num_hashes
        )
        assert predicted / 4 < measured < predicted * 4


class TestStorageTable:
    def test_rows(self, lvq_system, strawman_system):
        rows = storage_table(
            [
                ("lvq", lvq_system.headers()),
                ("strawman", strawman_system.headers()),
            ]
        )
        by_name = {row["system"]: row for row in rows}
        assert by_name["lvq"]["per_block_overhead"] == 64
        assert by_name["strawman"]["per_block_overhead"] == 32
        assert by_name["lvq"]["vs_bitcoin"] == pytest.approx(144 / 80)

    def test_header_overhead(self, lvq_system):
        header = lvq_system.headers()[1]
        assert header_overhead_per_block(header) == header.size_bytes() - (
            BASE_HEADER_SIZE
        )

    def test_empty_headers(self):
        rows = storage_table([("empty", [])])
        assert rows[0]["total_bytes"] == 0
