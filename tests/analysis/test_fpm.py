"""Tests for the BMT endpoint-count model, including model-vs-measured."""

import pytest

from repro.analysis.fpm import (
    expected_endpoints,
    expected_failed_leaves,
    layer_fill_ratio,
)
from repro.bloom.filter import BloomFilter
from repro.merkle.bmt import BmtTree


class TestLayerFill:
    def test_layer_zero_is_block_fill(self):
        from repro.bloom.params import fill_ratio_estimate

        assert layer_fill_ratio(0, 50, 4096, 3) == fill_ratio_estimate(
            50, 4096, 3
        )

    def test_monotone_in_layer(self):
        fills = [layer_fill_ratio(j, 50, 4096, 3) for j in range(8)]
        assert fills == sorted(fills)

    def test_negative_layer_rejected(self):
        with pytest.raises(ValueError):
            layer_fill_ratio(-1, 50, 4096, 3)


class TestExpectedEndpoints:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            expected_endpoints(6, 50, 4096, 3)

    def test_saturated_filters_give_all_leaves(self):
        """If even per-block filters always fail, every leaf is an endpoint."""
        estimate = expected_endpoints(64, 10_000, 64, 2)
        assert estimate == pytest.approx(64, rel=0.05)

    def test_huge_filters_give_one_endpoint(self):
        """If the root check succeeds, the root is the only endpoint."""
        estimate = expected_endpoints(64, 2, 1 << 20, 3)
        assert estimate == pytest.approx(1.0, abs=0.1)

    def test_matches_simulation(self):
        """Independence model vs the real BMT, within statistical slack."""
        num_blocks, items, bits, k = 32, 24, 1024, 3
        trees = []
        for trial in range(8):
            leaves = []
            for height in range(1, num_blocks + 1):
                bf = BloomFilter.from_items(
                    (
                        f"t{trial}/b{height}/a{i}".encode()
                        for i in range(items)
                    ),
                    bits,
                    k,
                )
                leaves.append((height, bf))
            trees.append(BmtTree.build(leaves))
        probes = [f"absent-{i}".encode() for i in range(40)]
        total = sum(
            len(tree.find_endpoints(probe))
            for tree in trees
            for probe in probes
        )
        measured = total / (len(trees) * len(probes))
        predicted = expected_endpoints(num_blocks, items, bits, k)
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_u_shape_in_segment_length(self):
        """Fig 16's mechanism: per-block cost at M=1, level costs at
        huge M; some intermediate M minimizes total endpoints per block."""
        items, bits, k = 128, 15_360, 3

        def endpoints_per_block(segment_len):
            return expected_endpoints(segment_len, items, bits, k) / segment_len

        per_block = {m: endpoints_per_block(m) for m in (1, 4, 64, 1024, 4096)}
        assert per_block[1] == pytest.approx(1.0, abs=0.01)
        best = min(per_block.values())
        assert best < per_block[1]
        assert per_block[64] < per_block[1]


class TestExpectedFailedLeaves:
    def test_proportional_to_blocks(self):
        one = expected_failed_leaves(1, 100, 2048, 3)
        many = expected_failed_leaves(512, 100, 2048, 3)
        assert many == pytest.approx(512 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_failed_leaves(0, 100, 2048, 3)
