"""Tests for the plain-text reporting helpers."""

import pytest

from repro.analysis.report import format_bytes, render_series, render_table


class TestFormatBytes:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (1024, "1.00KB"),
            (10 * 1024, "10.00KB"),
            (1536, "1.50KB"),
            (1024**2, "1.00MB"),
            (843.22 * 1024**2, "843.22MB"),
            (2 * 1024**3, "2.00GB"),
        ],
    )
    def test_units(self, size, expected):
        assert format_bytes(size) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "v"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        widths = {len(line.rstrip()) <= len(lines[1]) for line in lines}
        assert widths == {True}

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert text.splitlines()[0] == "a"


class TestRenderSeries:
    def test_shape(self):
        text = render_series(
            "x", [1, 2], [[10, 20], [30, 40]], ["s1", "s2"]
        )
        lines = text.splitlines()
        assert lines[0].split() == ["x", "s1", "s2"]
        assert lines[2].split() == ["1", "10", "30"]
        assert lines[3].split() == ["2", "20", "40"]

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ValueError):
            render_series("x", [1], [[1]], ["a", "b"])
