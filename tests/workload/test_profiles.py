"""Unit tests for Table III probe profiles."""

import pytest

from repro.errors import WorkloadError
from repro.workload.profiles import (
    PAPER_PROBE_PROFILES,
    ProbeProfile,
    profile_table,
    scaled_probe_profiles,
)


class TestPaperProfiles:
    def test_table_iii_verbatim(self):
        assert profile_table(PAPER_PROBE_PROFILES) == [
            ("Addr1", 0, 0),
            ("Addr2", 1, 1),
            ("Addr3", 10, 5),
            ("Addr4", 60, 44),
            ("Addr5", 324, 289),
            ("Addr6", 929, 410),
        ]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ProbeProfile("bad", -1, 0)
        with pytest.raises(WorkloadError):
            ProbeProfile("bad", 1, 2)  # more blocks than txs
        with pytest.raises(WorkloadError):
            ProbeProfile("bad", 5, 0)  # txs without blocks

    def test_equality(self):
        assert ProbeProfile("x", 2, 1) == ProbeProfile("x", 2, 1)
        assert ProbeProfile("x", 2, 1) != ProbeProfile("x", 2, 2)


class TestScaling:
    def test_full_scale_unchanged(self):
        assert scaled_probe_profiles(4096) == PAPER_PROBE_PROFILES
        assert scaled_probe_profiles(8192) == PAPER_PROBE_PROFILES

    def test_half_scale(self):
        scaled = scaled_probe_profiles(2048)
        by_name = {p.name: p for p in scaled}
        assert by_name["Addr1"].tx_count == 0
        assert by_name["Addr2"].tx_count >= 1
        # Block counts shrink roughly proportionally.
        assert by_name["Addr6"].block_count == pytest.approx(205, abs=2)

    def test_tx_block_ratio_preserved(self):
        scaled = scaled_probe_profiles(1024)
        for original, small in zip(PAPER_PROBE_PROFILES, scaled):
            if original.tx_count == 0:
                continue
            original_ratio = original.tx_count / original.block_count
            small_ratio = small.tx_count / small.block_count
            assert small_ratio == pytest.approx(original_ratio, rel=0.25)

    def test_nonempty_probes_stay_nonempty(self):
        for blocks in (16, 48, 100):
            scaled = scaled_probe_profiles(blocks)
            for original, small in zip(PAPER_PROBE_PROFILES, scaled):
                if original.tx_count > 0:
                    assert small.tx_count >= 1
                    assert 1 <= small.block_count <= blocks

    def test_ordering_by_activity_preserved(self):
        scaled = scaled_probe_profiles(512)
        tx_counts = [p.tx_count for p in scaled]
        assert tx_counts == sorted(tx_counts)

    def test_invalid_chain_size(self):
        with pytest.raises(WorkloadError):
            scaled_probe_profiles(0)
