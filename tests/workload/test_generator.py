"""Unit tests for the synthetic workload generator."""

import pytest

from repro.chain.utxo import UtxoSet
from repro.errors import WorkloadError
from repro.workload.generator import (
    GeneratedWorkload,
    WorkloadParams,
    generate_workload,
)
from repro.workload.profiles import ProbeProfile


@pytest.fixture(scope="module")
def small():
    params = WorkloadParams(
        num_blocks=24,
        txs_per_block=8,
        seed=123,
        probes=[
            ProbeProfile("P0", 0, 0),
            ProbeProfile("P1", 1, 1),
            ProbeProfile("P2", 9, 4),
            ProbeProfile("P3", 15, 12),
        ],
    )
    return generate_workload(params)


class TestShape:
    def test_block_count(self, small):
        assert len(small.bodies) == 25  # genesis + 24

    def test_genesis_is_single_coinbase(self, small):
        genesis = small.bodies[0]
        assert len(genesis) == 1
        assert genesis[0].is_coinbase

    def test_every_block_starts_with_coinbase(self, small):
        for height in range(1, 25):
            assert small.bodies[height][0].is_coinbase

    def test_background_tx_count(self, small):
        for height in range(1, 25):
            # coinbase + background (+ maybe probe txs)
            assert len(small.bodies[height]) >= 1 + 8


class TestDeterminism:
    def test_same_seed_same_chain(self):
        params = WorkloadParams(num_blocks=8, txs_per_block=4, seed=9)
        a = generate_workload(params)
        b = generate_workload(params)
        for block_a, block_b in zip(a.bodies, b.bodies):
            assert [t.txid() for t in block_a] == [t.txid() for t in block_b]

    def test_different_seed_different_chain(self):
        a = generate_workload(WorkloadParams(num_blocks=8, txs_per_block=4, seed=1))
        b = generate_workload(WorkloadParams(num_blocks=8, txs_per_block=4, seed=2))
        assert [t.txid() for t in a.bodies[1]] != [t.txid() for t in b.bodies[1]]


class TestProbeFootprints:
    def test_exact_tx_and_block_counts(self, small):
        expectations = {"P0": (0, 0), "P1": (1, 1), "P2": (9, 4), "P3": (15, 12)}
        for name, expected in expectations.items():
            address = small.probe_addresses[name]
            assert small.footprint_of(address) == expected

    def test_probes_absent_from_genesis(self, small):
        genesis_addresses = set()
        for tx in small.bodies[0]:
            genesis_addresses.update(tx.addresses())
        assert not genesis_addresses & set(small.probe_addresses.values())

    def test_probe_addresses_distinct(self, small):
        addresses = list(small.probe_addresses.values())
        assert len(set(addresses)) == len(addresses)

    def test_history_of_matches_footprint(self, small):
        address = small.probe_addresses["P2"]
        history = small.history_of(address)
        assert len(history) == 9
        assert all(tx.involves(address) for _height, tx in history)
        assert len({height for height, _ in history}) == 4


class TestUtxoValidity:
    def test_chain_replays_cleanly(self, small):
        """Every input spends a real output with matching address/value."""
        utxo = UtxoSet()
        for body in small.bodies:
            utxo.apply_block(body)

    def test_probe_balances_non_negative(self, small):
        utxo = UtxoSet()
        for body in small.bodies:
            utxo.apply_block(body)
        for address in small.probe_addresses.values():
            assert utxo.balance(address) >= 0


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            WorkloadParams(num_blocks=0)
        with pytest.raises(WorkloadError):
            WorkloadParams(num_blocks=4, txs_per_block=0)

    def test_probe_needs_enough_blocks(self):
        with pytest.raises(WorkloadError):
            WorkloadParams(
                num_blocks=4, probes=[ProbeProfile("X", 10, 8)]
            )

    def test_default_probes_scale(self):
        params = WorkloadParams(num_blocks=128)
        names = [p.name for p in params.probes]
        assert names == [f"Addr{i}" for i in range(1, 7)]

    def test_footprint_of_unknown_address(self, small):
        assert small.footprint_of("1NotInTheChain") == (0, 0)

    def test_generated_type(self, small):
        assert isinstance(small, GeneratedWorkload)
