"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


CHAIN_ARGS = ["--blocks", "24", "--txs-per-block", "8", "--bf-bytes", "128"]


class TestQueryCommand:
    def test_probe_by_name(self, capsys):
        code, out = run_cli(
            capsys, "query", *CHAIN_ARGS, "--address", "Addr2"
        )
        assert code == 0
        assert "balance (Eq 1)" in out
        assert "proof bytes" in out

    def test_verbose_lists_transactions(self, capsys):
        code, out = run_cli(
            capsys, "query", *CHAIN_ARGS, "--address", "Addr3", "--verbose"
        )
        assert code == 0
        assert "h=" in out

    def test_literal_unknown_address(self, capsys):
        code, out = run_cli(
            capsys,
            "query",
            *CHAIN_ARGS,
            "--address",
            "1BitcoinEaterAddressDontSendf59kuE",
        )
        assert code == 0
        assert "transactions  : 0" in out

    def test_range_query(self, capsys):
        code, out = run_cli(
            capsys,
            "query",
            *CHAIN_ARGS,
            "--address",
            "Addr5",
            "--range",
            "5",
            "15",
        )
        assert code == 0
        assert "proof bytes" in out


class TestCompareCommand:
    def test_table_shape(self, capsys):
        code, out = run_cli(capsys, "compare", *CHAIN_ARGS)
        assert code == 0
        for column in ("strawman", "lvq_no_bmt", "lvq_no_smt", "lvq"):
            assert column in out
        for probe in ("Addr1", "Addr6"):
            assert probe in out


class TestStorageCommand:
    def test_rows(self, capsys):
        code, out = run_cli(capsys, "storage", *CHAIN_ARGS)
        assert code == 0
        assert "strawman_header_bf" in out
        assert "vs Bitcoin" in out


class TestAttackCommand:
    def test_all_attacks_handled(self, capsys):
        code, out = run_cli(capsys, "attack", *CHAIN_ARGS)
        assert code == 0, "an attack went undetected"
        assert "rejected" in out
        assert "ACCEPTED" not in out


class TestWalletCommand:
    def test_wallet_session(self, capsys):
        code, out = run_cli(
            capsys, "wallet", *CHAIN_ARGS, "--watch", "Addr2", "Addr4"
        )
        assert code == 0
        assert "Total:" in out
        assert "Verified balance" in out

    def test_wallet_save_and_reload(self, capsys, tmp_path):
        target = str(tmp_path / "wallet")
        code, out = run_cli(
            capsys,
            "wallet",
            *CHAIN_ARGS,
            "--watch",
            "Addr2",
            "--save",
            target,
        )
        assert code == 0
        from repro.wallet import Wallet

        restored = Wallet.load(target)
        assert len(restored.addresses) == 1


class TestSegmentsCommand:
    def test_tables(self, capsys):
        code, out = run_cli(capsys, "segments", "--tip", "466")
        assert code == 0
        assert "1, 2, 3, 4, 5, 6, 7, 8" in out
        assert "[465,466]" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
