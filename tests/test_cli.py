"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


CHAIN_ARGS = ["--blocks", "24", "--txs-per-block", "8", "--bf-bytes", "128"]


class TestQueryCommand:
    def test_probe_by_name(self, capsys):
        code, out = run_cli(
            capsys, "query", *CHAIN_ARGS, "--address", "Addr2"
        )
        assert code == 0
        assert "balance (Eq 1)" in out
        assert "proof bytes" in out

    def test_verbose_lists_transactions(self, capsys):
        code, out = run_cli(
            capsys, "query", *CHAIN_ARGS, "--address", "Addr3", "--verbose"
        )
        assert code == 0
        assert "h=" in out

    def test_literal_unknown_address(self, capsys):
        code, out = run_cli(
            capsys,
            "query",
            *CHAIN_ARGS,
            "--address",
            "1BitcoinEaterAddressDontSendf59kuE",
        )
        assert code == 0
        assert "transactions  : 0" in out

    def test_range_query(self, capsys):
        code, out = run_cli(
            capsys,
            "query",
            *CHAIN_ARGS,
            "--address",
            "Addr5",
            "--range",
            "5",
            "15",
        )
        assert code == 0
        assert "proof bytes" in out


class TestCompareCommand:
    def test_table_shape(self, capsys):
        code, out = run_cli(capsys, "compare", *CHAIN_ARGS)
        assert code == 0
        for column in ("strawman", "lvq_no_bmt", "lvq_no_smt", "lvq"):
            assert column in out
        for probe in ("Addr1", "Addr6"):
            assert probe in out


class TestStorageCommand:
    def test_rows(self, capsys):
        code, out = run_cli(capsys, "storage", *CHAIN_ARGS)
        assert code == 0
        assert "strawman_header_bf" in out
        assert "vs Bitcoin" in out


class TestAttackCommand:
    def test_all_attacks_handled(self, capsys):
        code, out = run_cli(capsys, "attack", *CHAIN_ARGS)
        assert code == 0, "an attack went undetected"
        assert "rejected" in out
        assert "ACCEPTED" not in out


class TestWalletCommand:
    def test_wallet_session(self, capsys):
        code, out = run_cli(
            capsys, "wallet", *CHAIN_ARGS, "--watch", "Addr2", "Addr4"
        )
        assert code == 0
        assert "Total:" in out
        assert "Verified balance" in out

    def test_wallet_save_and_reload(self, capsys, tmp_path):
        target = str(tmp_path / "wallet")
        code, out = run_cli(
            capsys,
            "wallet",
            *CHAIN_ARGS,
            "--watch",
            "Addr2",
            "--save",
            target,
        )
        assert code == 0
        from repro.wallet import Wallet

        restored = Wallet.load(target)
        assert len(restored.addresses) == 1


class TestSegmentsCommand:
    def test_tables(self, capsys):
        code, out = run_cli(capsys, "segments", "--tip", "466")
        assert code == 0
        assert "1, 2, 3, 4, 5, 6, 7, 8" in out
        assert "[465,466]" in out


class TestVerifyStoreCommand:
    @pytest.fixture()
    def store_dir(self, tmp_path):
        from repro.query.builder import build_system
        from repro.query.config import SystemConfig
        from repro.storage.durable import DurableStore
        from repro.workload.generator import WorkloadParams, generate_workload

        workload = generate_workload(
            WorkloadParams(num_blocks=5, txs_per_block=3, seed=17)
        )
        system = build_system(
            workload.bodies, SystemConfig.lvq(bf_bytes=96, segment_len=4)
        )
        DurableStore.create(tmp_path / "store", system)
        return tmp_path / "store"

    def test_clean_store_exits_zero(self, capsys, store_dir):
        code, out = run_cli(capsys, "verify-store", str(store_dir), "--deep")
        assert code == 0
        assert "clean" in out
        assert "blocks          : 6" in out

    def test_corrupt_store_exits_one(self, capsys, store_dir):
        log = store_dir / "chain.log"
        raw = bytearray(log.read_bytes())
        raw[8] ^= 0xFF
        log.write_bytes(bytes(raw))
        code, out = run_cli(capsys, "verify-store", str(store_dir))
        assert code == 1
        assert "CORRUPT" in out
        assert "first bad record: offset 0" in out

    def test_torn_tail_still_clean(self, capsys, store_dir):
        log = store_dir / "chain.log"
        log.write_bytes(log.read_bytes() + b"\x01\x02\x03")
        code, out = run_cli(capsys, "verify-store", str(store_dir))
        assert code == 0
        assert "torn tail" in out

    def test_not_a_store(self, capsys, tmp_path):
        code, out = run_cli(capsys, "verify-store", str(tmp_path))
        assert code == 1


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
