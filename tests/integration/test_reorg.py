"""Integration: light-node chain reorganization handling.

Two full nodes share a common prefix and diverge; the light node follows
the longest fork (height as work proxy — this simulation has no PoW) and
refuses shorter or broken alternatives.  After the switch, queries
against the new fork verify and reflect its history.
"""

import pytest

from repro.errors import VerificationError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile

CONFIG = SystemConfig.lvq(bf_bytes=192, segment_len=8)


@pytest.fixture(scope="module")
def forked_chains():
    """Chain A (shorter) and chain B (longer) sharing a 12-block prefix."""
    base = generate_workload(
        WorkloadParams(
            num_blocks=20,
            txs_per_block=6,
            seed=55,
            probes=[ProbeProfile("P", 8, 6)],
        )
    )
    alt = generate_workload(
        WorkloadParams(
            num_blocks=26,
            txs_per_block=6,
            seed=56,
            probes=[ProbeProfile("P", 8, 6)],
        )
    )
    prefix = base.bodies[:13]  # genesis + heights 1..12
    bodies_a = prefix + base.bodies[13:21]  # tip 20
    bodies_b = prefix + alt.bodies[13:27]  # tip 26 (longer)
    system_a = build_system(bodies_a, CONFIG)
    system_b = build_system(bodies_b, CONFIG)
    return base, system_a, system_b


class TestForkDetection:
    def test_shared_prefix_identical(self, forked_chains):
        _base, system_a, system_b = forked_chains
        for height in range(13):
            assert (
                system_a.headers()[height].block_id()
                == system_b.headers()[height].block_id()
            )
        assert (
            system_a.headers()[13].block_id()
            != system_b.headers()[13].block_id()
        )

    def test_plain_sync_rejects_divergent_peer(self, forked_chains):
        _base, system_a, system_b = forked_chains
        light = LightNode(system_a.headers()[:16], CONFIG)
        with pytest.raises(VerificationError):
            light.sync_headers(FullNode(system_b))


class TestReorg:
    def test_adopts_longer_fork(self, forked_chains):
        _base, system_a, system_b = forked_chains
        light = LightNode(system_a.headers(), CONFIG)  # fully on A
        replaced, appended = light.sync_with_reorg(FullNode(system_b))
        assert replaced == 8  # heights 13..20 of A discarded
        assert appended == 14  # heights 13..26 of B adopted
        assert light.tip_height == 26
        assert (
            light.headers[-1].block_id()
            == system_b.headers()[-1].block_id()
        )

    def test_queries_verify_after_reorg(self, forked_chains):
        _base, system_a, system_b = forked_chains
        light = LightNode(system_a.headers(), CONFIG)
        light.sync_with_reorg(FullNode(system_b))
        # Probe address from the shared-prefix workload still resolves.
        full_b = FullNode(system_b)
        for height in (3, 7, 11):
            block = system_b.chain.block_at(height)
            address = block.unique_addresses()[0]
            history = light.query_history(full_b, address)
            assert any(h == height for h, _tx in history.transactions)

    def test_refuses_shorter_fork(self, forked_chains):
        _base, system_a, system_b = forked_chains
        light = LightNode(system_b.headers(), CONFIG)  # on the long fork
        with pytest.raises(VerificationError):
            light.sync_with_reorg(FullNode(system_a))
        assert light.tip_height == 26  # unchanged

    def test_equal_length_fork_is_kept_out(self, forked_chains):
        """An equal-length fork can never displace ours: the beyond-tip
        sync returns nothing new and the adoption rule demands a strictly
        longer chain, so our tip stays put."""
        base, system_a, _system_b = forked_chains
        other = generate_workload(
            WorkloadParams(
                num_blocks=20,
                txs_per_block=6,
                seed=99,
                probes=[ProbeProfile("P", 8, 6)],
            )
        )
        bodies_c = base.bodies[:13] + other.bodies[13:21]
        system_c = build_system(bodies_c, CONFIG)
        light = LightNode(system_a.headers(), CONFIG)
        tip_before = light.headers[-1].block_id()
        replaced, appended = light.sync_with_reorg(FullNode(system_c))
        assert (replaced, appended) == (0, 0)
        assert light.headers[-1].block_id() == tip_before

    def test_refuses_foreign_genesis(self, forked_chains):
        """A peer whose chain does not share our first header is rejected
        even when longer."""
        _base, system_a, system_b = forked_chains
        # A light node whose header list starts mid-chain models a client
        # anchored on a checkpoint the peer's chain does not contain.
        anchored = LightNode(system_a.headers()[5:], CONFIG)
        with pytest.raises(VerificationError):
            anchored.sync_with_reorg(FullNode(system_b))

    def test_noop_when_peer_is_extension(self, forked_chains):
        """A peer that simply has more of *our* chain is a plain sync."""
        _base, _system_a, system_b = forked_chains
        light = LightNode(system_b.headers()[:20], CONFIG)
        replaced, appended = light.sync_with_reorg(FullNode(system_b))
        assert replaced == 0
        assert appended == 7
        assert light.tip_height == 26
