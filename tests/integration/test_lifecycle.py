"""Integration: a full node-operator lifecycle across process restarts.

Day 0: build a chain, serve a wallet, persist everything to disk.
Day 1 (fresh "process"): reload chain and wallet from disk, mine more
blocks, sync the wallet, verify balances against ground truth the whole
way.  Exercises storage + growth + wallet + batch verification together.
"""

import pytest

from repro.chain.utxo import balance_from_history
from repro.node.full_node import FullNode
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.storage.chain_store import load_system, save_system
from repro.wallet import Wallet
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile


@pytest.fixture(scope="module")
def lifecycle_workload():
    return generate_workload(
        WorkloadParams(
            num_blocks=40,
            txs_per_block=8,
            seed=321,
            probes=[
                ProbeProfile("Hot", 14, 9),
                ProbeProfile("Cold", 2, 2),
            ],
        )
    )


def _expected_balance(workload, address, up_to):
    return balance_from_history(
        address,
        (tx for h, tx in workload.history_of(address) if h <= up_to),
    )


def test_full_lifecycle(lifecycle_workload, tmp_path):
    workload = lifecycle_workload
    config = SystemConfig.lvq(bf_bytes=192, segment_len=16)
    hot = workload.probe_addresses["Hot"]
    cold = workload.probe_addresses["Cold"]

    # --- day 0: run with the first 25 blocks, persist everything --------
    system = build_system(workload.bodies[:26], config)
    full_node = FullNode(system)
    from repro.node.light_node import LightNode

    wallet = Wallet(LightNode.from_full_node(full_node), [hot, cold])
    balances = wallet.refresh(full_node)
    assert balances[hot] == _expected_balance(workload, hot, 25)
    assert balances[cold] == _expected_balance(workload, cold, 25)

    save_system(system, tmp_path / "chain")
    wallet.save(tmp_path / "wallet")

    # --- day 1: fresh objects from disk ---------------------------------
    reloaded_system = load_system(tmp_path / "chain")
    reloaded_node = FullNode(reloaded_system)
    reloaded_wallet = Wallet.load(tmp_path / "wallet")
    assert reloaded_wallet.light_node.tip_height == 25

    # Mine the remaining blocks and sync the wallet.
    reloaded_node.extend_chain(workload.bodies[26:])
    replaced, appended = reloaded_wallet.sync(reloaded_node)
    assert replaced == 0
    assert appended == len(workload.bodies) - 26
    assert reloaded_wallet.light_node.tip_height == 40

    assert reloaded_wallet.balance(hot) == _expected_balance(
        workload, hot, 40
    )
    assert reloaded_wallet.balance(cold) == _expected_balance(
        workload, cold, 40
    )

    # The grown-on-disk chain still matches a from-scratch build.
    fresh = build_system(workload.bodies, config)
    assert (
        reloaded_system.headers()[-1].block_id()
        == fresh.headers()[-1].block_id()
    )


def test_lifecycle_on_non_bmt_system(lifecycle_workload, tmp_path):
    """Same lifecycle on the strawman variant (different header layout,
    shared-filter batch path)."""
    workload = lifecycle_workload
    config = SystemConfig.lvq_no_bmt(bf_bytes=96)
    hot = workload.probe_addresses["Hot"]

    system = build_system(workload.bodies[:21], config)
    save_system(system, tmp_path / "chain2")
    reloaded = load_system(tmp_path / "chain2")
    reloaded.append_block(workload.bodies[21])
    full_node = FullNode(reloaded)

    from repro.node.light_node import LightNode

    wallet = Wallet(LightNode.from_full_node(full_node), [hot])
    wallet.refresh(full_node)
    assert wallet.balance(hot) == _expected_balance(workload, hot, 21)
