"""Integration checks pinned to the paper's tables and headline claims."""

import pytest

from repro.analysis.sizing import storage_table
from repro.chain.segments import merge_set, segment_spans
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import PAPER_PROBE_PROFILES, scaled_probe_profiles


class TestTableI:
    def test_merge_columns_match_paper(self):
        expected = {
            1: [1],
            2: [1, 2],
            3: [3],
            4: [1, 2, 3, 4],
            5: [5],
            6: [5, 6],
            7: [7],
            8: [1, 2, 3, 4, 5, 6, 7, 8],
        }
        for height, blocks in expected.items():
            assert merge_set(height, 4096) == blocks


class TestTableII:
    def test_divisions_match_paper(self):
        assert segment_spans(464, 256)[1:] == [
            (257, 384),
            (385, 448),
            (449, 464),
        ]
        assert segment_spans(465, 256)[1:] == [
            (257, 384),
            (385, 448),
            (449, 464),
            (465, 465),
        ]
        assert segment_spans(466, 256)[1:] == [
            (257, 384),
            (385, 448),
            (449, 464),
            (465, 466),
        ]


class TestTableIII:
    def test_paper_profiles(self):
        rows = [(p.tx_count, p.block_count) for p in PAPER_PROBE_PROFILES]
        assert rows == [(0, 0), (1, 1), (10, 5), (60, 44), (324, 289), (929, 410)]

    def test_scaled_workload_reproduces_footprints_exactly(self):
        """Injected probes hit their Table-III footprint to the block."""
        num_blocks = 64
        workload = generate_workload(
            WorkloadParams(num_blocks=num_blocks, txs_per_block=8, seed=11)
        )
        for profile in scaled_probe_profiles(num_blocks):
            address = workload.probe_addresses[profile.name]
            assert workload.footprint_of(address) == (
                profile.tx_count,
                profile.block_count,
            )


class TestChallenge1Storage:
    """§IV-A1: strawman headers explode; LVQ stays at 'dozens of bytes'."""

    def test_storage_ordering(self, workload):
        systems = {
            "bitcoin-spv-equivalent": None,
            "strawman-header-bf": SystemConfig.strawman_header_bf(bf_bytes=96),
            "strawman": SystemConfig.strawman(bf_bytes=96),
            "lvq": SystemConfig.lvq(bf_bytes=192, segment_len=16),
        }
        rows = {}
        for label, config in systems.items():
            if config is None:
                continue
            built = build_system(workload.bodies, config)
            [row] = storage_table([(label, built.headers())])
            rows[label] = row
        assert rows["strawman-header-bf"]["per_block_overhead"] == 96
        assert rows["strawman"]["per_block_overhead"] == 32
        assert rows["lvq"]["per_block_overhead"] == 64
        # The strawman's overhead scales with the BF (KBs at paper scale);
        # LVQ's is a constant 64 bytes regardless of filter size.
        big_bf = build_system(
            workload.bodies, SystemConfig.strawman_header_bf(bf_bytes=1024)
        )
        [big_row] = storage_table([("big", big_bf.headers())])
        assert big_row["per_block_overhead"] == 1024
        big_lvq = build_system(
            workload.bodies, SystemConfig.lvq(bf_bytes=1024, segment_len=16)
        )
        [big_lvq_row] = storage_table([("big-lvq", big_lvq.headers())])
        assert big_lvq_row["per_block_overhead"] == 64


class TestFigure12Shape:
    """The qualitative orderings Fig 12 reports, on the test chain."""

    @pytest.fixture(scope="class")
    def sizes(self, workload):
        configs = {
            "strawman": SystemConfig.strawman(bf_bytes=96),
            "lvq_no_bmt": SystemConfig.lvq_no_bmt(bf_bytes=96),
            "lvq_no_smt": SystemConfig.lvq_no_smt(bf_bytes=192, segment_len=16),
            "lvq": SystemConfig.lvq(bf_bytes=192, segment_len=16),
        }
        table = {}
        for label, config in configs.items():
            system = build_system(workload.bodies, config)
            table[label] = {
                name: answer_query(system, address).size_bytes(config)
                for name, address in workload.probe_addresses.items()
            }
        return table

    def test_lvq_wins_for_sparse_addresses(self, sizes):
        """'size of query result in LVQ is only 1.39% of the strawman'
        for the inexistent address; big wins persist while activity is
        sparse."""
        assert sizes["lvq"]["Addr1"] * 3 < sizes["strawman"]["Addr1"]
        assert sizes["lvq"]["Addr1"] * 3 < sizes["lvq_no_bmt"]["Addr1"]
        assert sizes["lvq"]["Addr2"] < sizes["strawman"]["Addr2"]
        assert sizes["lvq"]["Addr3"] < sizes["strawman"]["Addr3"]

    def test_no_smt_declines_for_busy_addresses(self, sizes):
        """LVQ-no-SMT ships integral blocks for every active block and
        'declines dramatically in the case of plentiful transactions'."""
        assert sizes["lvq_no_smt"]["Addr5"] > 2 * sizes["lvq"]["Addr5"]
        assert sizes["lvq_no_smt"]["Addr6"] > 1.5 * sizes["lvq"]["Addr6"]

    def test_no_smt_fine_for_sparse_addresses(self, sizes):
        assert sizes["lvq_no_smt"]["Addr1"] == sizes["lvq"]["Addr1"]
        assert sizes["lvq_no_smt"]["Addr2"] < sizes["strawman"]["Addr2"] * 1.2

    def test_no_bmt_tracks_strawman(self, sizes):
        """'its result size increases modestly': both share the per-block
        BF floor; SMT branches add a little on active blocks while saving
        an integral block wherever the strawman hits an FPM."""
        bf_floor = 48 * 96  # blocks x filter bytes, shipped by both
        for name in sizes["lvq_no_bmt"]:
            assert sizes["lvq_no_bmt"][name] >= bf_floor
            assert sizes["strawman"][name] >= bf_floor
            assert sizes["lvq_no_bmt"][name] < sizes["strawman"][name] * 2.0

    def test_no_bmt_edges_out_lvq_for_busy_addresses(self, sizes):
        """'LVQ without BMT maintains a small advantage over LVQ for
        Addr5 and Addr6' (its BFs are smaller)."""
        assert sizes["lvq_no_bmt"]["Addr6"] < sizes["lvq"]["Addr6"] * 1.3
