"""Integration: incremental chain growth and light-node header sync.

The paper's structures are defined per block, so a living chain must be
able to grow one block at a time: the full node appends blocks (updating
its BMT forest incrementally), the light node syncs just the new headers,
and queries over the extended chain keep verifying — including the
re-shaped covering segments of the new tip (Table II logic moves with the
chain head).
"""

import pytest

from repro.errors import VerificationError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.transport import InProcessTransport
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile


@pytest.fixture()
def growing_setup():
    workload = generate_workload(
        WorkloadParams(
            num_blocks=24,
            txs_per_block=8,
            seed=31,
            probes=[
                ProbeProfile("Ghost", 0, 0),
                ProbeProfile("Busy", 12, 8),
            ],
        )
    )
    config = SystemConfig.lvq(bf_bytes=192, segment_len=8)
    return workload, config


class TestIncrementalBuild:
    def test_append_equals_batch_build(self, growing_setup):
        """A chain grown block-by-block is byte-identical to a batch one."""
        workload, config = growing_setup
        batch = build_system(workload.bodies, config)
        grown = build_system(workload.bodies[:10], config)
        for body in workload.bodies[10:]:
            grown.append_block(body)
        assert grown.tip_height == batch.tip_height
        for height in range(len(workload.bodies)):
            assert (
                grown.headers()[height].serialize()
                == batch.headers()[height].serialize()
            )

    def test_queries_keep_verifying_while_growing(self, growing_setup):
        workload, config = growing_setup
        system = build_system(workload.bodies[:9], config)
        full_node = FullNode(system)
        light_node = LightNode.from_full_node(full_node)
        busy = workload.probe_addresses["Busy"]

        for next_height in range(9, len(workload.bodies)):
            history = light_node.query_history(full_node, busy)
            truth = [
                (h, tx.txid())
                for h, tx in workload.history_of(busy)
                if h <= light_node.tip_height
            ]
            assert [
                (h, tx.txid()) for h, tx in history.transactions
            ] == truth, f"tip={light_node.tip_height}"
            full_node.extend_chain([workload.bodies[next_height]])
            assert light_node.sync_headers(full_node) == 1

        # Final state covers the whole chain.
        final = light_node.query_history(full_node, busy)
        assert len(final.transactions) == 12


class TestHeaderSync:
    def test_sync_counts_bytes(self, growing_setup):
        workload, config = growing_setup
        system = build_system(workload.bodies[:20], config)
        full_node = FullNode(system)
        light_node = LightNode(system.headers()[:12], config)
        transport = InProcessTransport()
        accepted = light_node.sync_headers(full_node, transport)
        assert accepted == 8
        assert light_node.tip_height == 19
        # 8 LVQ headers at 144B each plus framing.
        assert transport.stats.bytes_to_client >= 8 * 144

    def test_sync_is_idempotent(self, growing_setup):
        workload, config = growing_setup
        system = build_system(workload.bodies, config)
        full_node = FullNode(system)
        light_node = LightNode.from_full_node(full_node)
        assert light_node.sync_headers(full_node) == 0

    def test_sync_rejects_unlinked_headers(self, growing_setup):
        """Headers from a different chain cannot be spliced in."""
        workload, config = growing_setup
        system = build_system(workload.bodies, config)
        other_workload = generate_workload(
            WorkloadParams(num_blocks=24, txs_per_block=8, seed=777)
        )
        other = build_system(other_workload.bodies, config)
        full_node = FullNode(other)
        light_node = LightNode(system.headers()[:12], config)
        with pytest.raises(VerificationError):
            light_node.sync_headers(full_node)

    def test_stale_light_node_rejects_tip_mismatch(self, growing_setup):
        """A light node that has not synced rejects longer-chain answers
        (and after syncing accepts them)."""
        workload, config = growing_setup
        system = build_system(workload.bodies, config)
        full_node = FullNode(system)
        stale = LightNode(system.headers()[:16], config)
        address = workload.probe_addresses["Busy"]
        from repro.errors import CompletenessError

        with pytest.raises(CompletenessError):
            stale.query_history(full_node, address)
        stale.sync_headers(full_node)
        history = stale.query_history(full_node, address)
        assert len(history.transactions) == 12
