"""Integration: full protocol flows across systems and chain shapes."""

import pytest

from repro.chain.utxo import UtxoSet, balance_from_history
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.transport import InProcessTransport
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile


class TestCrossSystemAgreement:
    def test_all_systems_return_identical_histories(
        self, workload, probe_addresses
    ):
        """Four prototypes, one truth: verified histories must agree."""
        configs = [
            SystemConfig.strawman(bf_bytes=96),
            SystemConfig.lvq_no_bmt(bf_bytes=96),
            SystemConfig.lvq_no_smt(bf_bytes=192, segment_len=16),
            SystemConfig.lvq(bf_bytes=192, segment_len=16),
        ]
        for address in probe_addresses.values():
            histories = []
            for config in configs:
                system = build_system(workload.bodies, config)
                full_node = FullNode(system)
                light_node = LightNode.from_full_node(full_node)
                history = light_node.query_history(full_node, address)
                histories.append(
                    [(h, tx.txid()) for h, tx in history.transactions]
                )
            assert all(h == histories[0] for h in histories[1:])

    def test_verified_balance_matches_utxo_set(self, workload, lvq_system):
        """Eq 1 over a *verified* history equals the consensus balance."""
        utxo = UtxoSet()
        for body in workload.bodies:
            utxo.apply_block(body)
        full_node = FullNode(lvq_system)
        light_node = LightNode.from_full_node(full_node)
        for address in workload.probe_addresses.values():
            assert light_node.query_balance(full_node, address) == (
                utxo.balance(address)
            )


class TestChainShapes:
    """Partial segments of every shape must verify (Table II logic)."""

    @pytest.mark.parametrize("num_blocks", [1, 2, 3, 7, 8, 9, 15, 16, 21])
    def test_odd_tips_lvq(self, num_blocks):
        workload = generate_workload(
            WorkloadParams(
                num_blocks=num_blocks,
                txs_per_block=6,
                seed=77,
                probes=[
                    ProbeProfile("Zero", 0, 0),
                    ProbeProfile("One", 1, 1),
                ],
            )
        )
        system = build_system(
            workload.bodies, SystemConfig.lvq(bf_bytes=128, segment_len=8)
        )
        full_node = FullNode(system)
        light_node = LightNode.from_full_node(full_node)
        for name, address in workload.probe_addresses.items():
            history = light_node.query_history(full_node, address)
            truth = workload.history_of(address)
            assert [(h, t.txid()) for h, t in history.transactions] == [
                (h, t.txid()) for h, t in truth
            ], f"tip={num_blocks} probe={name}"

    def test_segment_len_equal_one(self):
        """M=1 degenerates to per-block single-leaf BMTs and must work."""
        workload = generate_workload(
            WorkloadParams(num_blocks=6, txs_per_block=5, seed=3,
                           probes=[ProbeProfile("One", 1, 1)])
        )
        system = build_system(
            workload.bodies, SystemConfig.lvq(bf_bytes=128, segment_len=1)
        )
        full_node = FullNode(system)
        light_node = LightNode.from_full_node(full_node)
        address = workload.probe_addresses["One"]
        history = light_node.query_history(full_node, address)
        assert len(history.transactions) == 1
        assert history.num_endpoints == 6  # one endpoint per block

    def test_segment_len_beyond_tip(self):
        """M larger than the chain: only Table-II sub-segments exist."""
        workload = generate_workload(
            WorkloadParams(num_blocks=11, txs_per_block=5, seed=4,
                           probes=[ProbeProfile("One", 3, 2)])
        )
        system = build_system(
            workload.bodies, SystemConfig.lvq(bf_bytes=128, segment_len=64)
        )
        full_node = FullNode(system)
        light_node = LightNode.from_full_node(full_node)
        address = workload.probe_addresses["One"]
        history = light_node.query_history(full_node, address)
        assert len(history.transactions) == 3
        # 11 = 8 + 2 + 1 sub-segments
        result = full_node.query(address)
        assert [(s.start, s.end) for s in result.segments] == [
            (1, 8),
            (9, 10),
            (11, 11),
        ]


class TestTransportAccounting:
    def test_response_bytes_match_result_size(
        self, workload, lvq_system, probe_addresses
    ):
        full_node = FullNode(lvq_system)
        light_node = LightNode.from_full_node(full_node)
        for address in probe_addresses.values():
            transport = InProcessTransport()
            light_node.query_history(full_node, address, transport)
            expected = 1 + full_node.query(address).size_bytes(
                lvq_system.config
            )
            assert transport.stats.bytes_to_client == expected

    def test_lvq_cheaper_than_strawman_for_inactive_address(
        self, workload, lvq_system, strawman_system, probe_addresses
    ):
        """The paper's headline: orders of magnitude for empty addresses."""
        address = probe_addresses["Addr1"]
        sizes = {}
        for system in (lvq_system, strawman_system):
            full_node = FullNode(system)
            light_node = LightNode.from_full_node(full_node)
            transport = InProcessTransport()
            light_node.query_history(full_node, address, transport)
            sizes[system.config.kind.value] = transport.stats.bytes_to_client
        assert sizes["lvq"] * 3 < sizes["strawman"]


class TestCoffeeShopScenario:
    """The paper's §I motivating example, end to end."""

    def test_merchant_checks_customer_balance(self, workload, lvq_system):
        full_node = FullNode(lvq_system)
        merchant = LightNode.from_full_node(full_node)
        customer = workload.probe_addresses["Addr6"]
        balance = merchant.query_balance(full_node, customer)
        expected = balance_from_history(
            customer, (tx for _h, tx in workload.history_of(customer))
        )
        assert balance == expected

    def test_merchant_rejects_lying_full_node(self, workload, lvq_system):
        from repro.errors import VerificationError
        from repro.query.adversary import (
            MaliciousFullNode,
            omit_one_transaction,
        )

        liar = MaliciousFullNode(lvq_system, omit_one_transaction)
        merchant = LightNode(lvq_system.headers(), lvq_system.config)
        customer = workload.probe_addresses["Addr6"]
        with pytest.raises(VerificationError):
            merchant.query_balance(liar, customer)
        assert liar.last_attack_applied
