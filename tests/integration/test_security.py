"""Security fuzzing: random bit-level corruption of wire responses.

The strongest practical statement of §VI: take an honest serialized
response, corrupt it at random positions, and feed it to the light node.
Every outcome must be either a decode/verification failure or a history
byte-identical to the honest one (corrupting true don't-care padding is
impossible here because every byte of the format is load-bearing, but the
property is stated defensively).
"""

import random

import pytest

from repro.errors import ReproError
from repro.node.light_node import LightNode
from repro.query.prover import answer_query
from repro.query.result import QueryResult


def _history_fingerprint(history):
    return [(height, tx.txid()) for height, tx in history.transactions]


@pytest.mark.parametrize("probe_name", ["Addr1", "Addr3", "Addr6"])
def test_random_corruption_never_changes_accepted_history(
    workload, any_system, probe_addresses, probe_name
):
    system = any_system
    address = probe_addresses[probe_name]
    config = system.config
    light_node = LightNode(system.headers(), config)

    honest = answer_query(system, address)
    honest_payload = honest.serialize(config)
    honest_history = _history_fingerprint(light_node.verify(honest, address))

    rng = random.Random(0xC0FFEE)
    rejected = 0
    trials = 60
    for _ in range(trials):
        corrupted = bytearray(honest_payload)
        for _flip in range(rng.randint(1, 3)):
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
        if bytes(corrupted) == honest_payload:
            continue
        try:
            result = QueryResult.deserialize(bytes(corrupted), config)
            history = light_node.verify(result, address)
        except ReproError:
            rejected += 1
            continue
        # Accepted: must be observationally identical to the honest answer.
        assert _history_fingerprint(history) == honest_history
    # Sanity: corruption is not being silently swallowed wholesale.
    assert rejected > trials // 2


def test_truncated_responses_rejected(lvq_system, probe_addresses):
    config = lvq_system.config
    light_node = LightNode(lvq_system.headers(), config)
    address = probe_addresses["Addr6"]
    payload = answer_query(lvq_system, address).serialize(config)
    for cut in (1, len(payload) // 2, len(payload) - 1):
        with pytest.raises(ReproError):
            result = QueryResult.deserialize(payload[:cut], config)
            light_node.verify(result, address)


def test_response_for_other_address_rejected(lvq_system, probe_addresses):
    """Replaying a (valid!) response for a different address must fail."""
    light_node = LightNode(lvq_system.headers(), lvq_system.config)
    result = answer_query(lvq_system, probe_addresses["Addr2"])
    from repro.errors import VerificationError

    with pytest.raises(VerificationError):
        light_node.verify(result, probe_addresses["Addr1"])


def test_cross_chain_replay_rejected(workload, probe_addresses):
    """A valid LVQ response from one chain fails on another chain's
    headers (different seeds => different commitments)."""
    from repro.errors import VerificationError
    from repro.query.builder import build_system
    from repro.query.config import SystemConfig
    from repro.workload.generator import WorkloadParams, generate_workload

    config = SystemConfig.lvq(bf_bytes=192, segment_len=16)
    system_a = build_system(workload.bodies, config)
    other_workload = generate_workload(
        WorkloadParams(
            num_blocks=len(workload.bodies) - 1,
            txs_per_block=10,
            seed=4242,
            probes=workload.probe_profiles,
        )
    )
    system_b = build_system(other_workload.bodies, config)
    result = answer_query(system_a, probe_addresses["Addr4"])
    light_node_b = LightNode(system_b.headers(), config)
    with pytest.raises(VerificationError):
        light_node_b.verify(result, probe_addresses["Addr4"])
