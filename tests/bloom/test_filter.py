"""Unit tests for repro.bloom.filter."""

import pytest

from repro.bloom.filter import BloomFilter, bloom_positions
from repro.errors import EncodingError


class TestPositions:
    def test_deterministic(self):
        assert bloom_positions(b"addr", 5, 1024) == bloom_positions(
            b"addr", 5, 1024
        )

    def test_item_sensitivity(self):
        assert bloom_positions(b"a", 5, 1024) != bloom_positions(b"b", 5, 1024)

    def test_count(self):
        assert len(bloom_positions(b"x", 7, 256)) == 7

    def test_in_range(self):
        assert all(0 <= p < 64 for p in bloom_positions(b"x", 10, 64))

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            bloom_positions(b"x", 0, 64)
        with pytest.raises(ValueError):
            bloom_positions(b"x", 3, 0)


class TestMembership:
    def test_no_false_negatives(self):
        bloom = BloomFilter(256, 3)
        items = [f"item-{i}".encode() for i in range(20)]
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(256, 3)
        assert b"anything" not in bloom

    def test_check_fails_alias(self):
        bloom = BloomFilter(256, 3)
        bloom.add(b"x")
        assert bloom.check_fails(b"x")
        assert not bloom.check_fails(b"definitely-absent-item")

    def test_num_items_tracks_adds(self):
        bloom = BloomFilter(256, 3)
        bloom.add(b"a")
        bloom.add(b"a")
        assert bloom.num_items == 2


class TestUnion:
    def test_union_covers_both(self):
        a = BloomFilter(256, 3)
        b = BloomFilter(256, 3)
        a.add(b"left")
        b.add(b"right")
        merged = a | b
        assert b"left" in merged and b"right" in merged

    def test_union_bits_are_or(self):
        a = BloomFilter(256, 3)
        b = BloomFilter(256, 3)
        a.add(b"left")
        b.add(b"right")
        assert (a | b).bits == (a.bits | b.bits)

    def test_union_counts_items(self):
        a = BloomFilter(256, 3)
        b = BloomFilter(256, 3)
        a.add(b"x")
        b.add(b"y")
        b.add(b"z")
        assert (a | b).num_items == 3

    def test_incompatible_geometry_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(256, 3).union(BloomFilter(512, 3))
        with pytest.raises(ValueError):
            BloomFilter(256, 3).union(BloomFilter(256, 4))

    def test_union_is_commutative(self):
        a = BloomFilter(128, 2)
        b = BloomFilter(128, 2)
        a.add(b"1")
        b.add(b"2")
        assert (a | b) == (b | a)


class TestSerialization:
    def test_roundtrip(self):
        bloom = BloomFilter(256, 3)
        for i in range(10):
            bloom.add(f"i{i}".encode())
        restored = BloomFilter.from_bytes(bloom.to_bytes(), 3)
        assert restored == bloom
        assert all(f"i{i}".encode() in restored for i in range(10))

    def test_serialized_size_is_exact(self):
        assert len(BloomFilter(8 * 37, 3).to_bytes()) == 37

    def test_empty_payload_rejected(self):
        with pytest.raises(EncodingError):
            BloomFilter.from_bytes(b"", 3)

    def test_from_items(self):
        items = [b"a", b"b", b"c"]
        bloom = BloomFilter.from_items(items, 256, 3)
        assert all(item in bloom for item in items)
        assert bloom.num_items == 3

    def test_from_bits_copies(self):
        original = BloomFilter(64, 2)
        original.add(b"x")
        derived = BloomFilter.from_bits(original.bits, 2)
        derived.add(b"y")
        assert b"y" not in original or original.bits != derived.bits


class TestStatistics:
    def test_fill_ratio_grows(self):
        bloom = BloomFilter(512, 3)
        previous = bloom.fill_ratio()
        for i in range(30):
            bloom.add(f"item-{i}".encode())
            current = bloom.fill_ratio()
            assert current >= previous
            previous = current

    def test_false_positive_rate_observable(self):
        """A deliberately tiny filter must show false positives."""
        bloom = BloomFilter(32, 2)
        for i in range(30):
            bloom.add(f"member-{i}".encode())
        probes = [f"absent-{i}".encode() for i in range(200)]
        false_positives = sum(probe in bloom for probe in probes)
        assert false_positives > 0  # essentially saturated

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(256, 0)
