"""Unit tests for the analytic Bloom filter models."""

import math

import pytest

from repro.bloom.filter import BloomFilter
from repro.bloom.params import (
    expected_fpm_count,
    false_positive_rate,
    false_positive_rate_for_fill,
    fill_ratio_estimate,
    optimal_num_hashes,
)


class TestFillRatio:
    def test_zero_items(self):
        assert fill_ratio_estimate(0, 1024, 3) == 0.0

    def test_monotone_in_items(self):
        values = [fill_ratio_estimate(n, 1024, 3) for n in (1, 10, 100, 1000)]
        assert values == sorted(values)
        assert values[-1] > 0.9

    def test_matches_exponential_limit(self):
        estimate = fill_ratio_estimate(100, 10_000, 3)
        limit = 1 - math.exp(-3 * 100 / 10_000)
        assert abs(estimate - limit) < 1e-3

    def test_matches_empirical_fill(self):
        """The closed form predicts a real filter's fill within a few %."""
        m, k, n = 4096, 3, 300
        bloom = BloomFilter(m, k)
        for i in range(n):
            bloom.add(f"item-{i}".encode())
        predicted = fill_ratio_estimate(n, m, k)
        assert abs(bloom.fill_ratio() - predicted) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            fill_ratio_estimate(-1, 1024, 3)
        with pytest.raises(ValueError):
            fill_ratio_estimate(1, 0, 3)
        with pytest.raises(ValueError):
            fill_ratio_estimate(1, 1024, 0)


class TestFalsePositiveRate:
    def test_zero_items_zero_rate(self):
        assert false_positive_rate(0, 1024, 3) == 0.0

    def test_monotone_in_items(self):
        rates = [false_positive_rate(n, 4096, 3) for n in (10, 100, 1000)]
        assert rates == sorted(rates)

    def test_bounded(self):
        assert 0.0 <= false_positive_rate(10_000, 64, 3) <= 1.0

    def test_fill_based_form(self):
        fill = fill_ratio_estimate(100, 1024, 3)
        assert false_positive_rate(100, 1024, 3) == pytest.approx(
            false_positive_rate_for_fill(fill, 3)
        )

    def test_fill_based_validation(self):
        with pytest.raises(ValueError):
            false_positive_rate_for_fill(1.5, 3)
        with pytest.raises(ValueError):
            false_positive_rate_for_fill(0.5, 0)


class TestOptimalK:
    def test_classic_formula(self):
        # m/n = 10 bits per element => k* = round(10 ln2) = 7
        assert optimal_num_hashes(1000, 100) == 7

    def test_at_least_one(self):
        assert optimal_num_hashes(8, 1000) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_num_hashes(0, 10)
        with pytest.raises(ValueError):
            optimal_num_hashes(10, 0)


class TestExpectedFpm:
    def test_papers_challenge2_arithmetic(self):
        """600k blocks at FPM ~1e-3 gives >600 expected IBs (§IV-A2)."""
        # Pick a geometry whose per-block FPM is about 1e-3.
        rate = false_positive_rate(2048, 81920, 3)
        expected = expected_fpm_count(600_000, 2048, 81920, 3)
        assert expected == pytest.approx(600_000 * rate)
        assert expected > 100  # the paper's point: IBs add up fast

    def test_linear_in_blocks(self):
        one = expected_fpm_count(1, 100, 1024, 3)
        thousand = expected_fpm_count(1000, 100, 1024, 3)
        assert thousand == pytest.approx(1000 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_fpm_count(-1, 100, 1024, 3)
