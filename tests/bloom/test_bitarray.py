"""Unit tests for repro.bloom.bitarray."""

import pytest

from repro.bloom.bitarray import BitArray
from repro.errors import EncodingError


class TestConstruction:
    def test_starts_empty(self):
        bits = BitArray(64)
        assert bits.popcount() == 0
        assert bits.fill_ratio() == 0.0

    @pytest.mark.parametrize("size", [0, -8])
    def test_nonpositive_size_rejected(self, size):
        with pytest.raises(ValueError):
            BitArray(size)

    def test_unaligned_size_rejected(self):
        with pytest.raises(ValueError):
            BitArray(12)

    def test_oversized_value_rejected(self):
        with pytest.raises(ValueError):
            BitArray(8, 1 << 9)

    def test_from_bytes_empty_rejected(self):
        with pytest.raises(EncodingError):
            BitArray.from_bytes(b"")


class TestBitOps:
    def test_set_get_clear(self):
        bits = BitArray(64)
        bits.set(17)
        assert bits.get(17)
        assert not bits.get(16)
        bits.clear(17)
        assert not bits.get(17)

    def test_set_idempotent(self):
        bits = BitArray(16)
        bits.set(3)
        bits.set(3)
        assert bits.popcount() == 1

    @pytest.mark.parametrize("index", [-1, 64, 1000])
    def test_out_of_range(self, index):
        bits = BitArray(64)
        with pytest.raises(IndexError):
            bits.get(index)
        with pytest.raises(IndexError):
            bits.set(index)

    def test_len(self):
        assert len(BitArray(128)) == 128
        assert BitArray(128).size_bytes == 16


class TestSetAlgebra:
    def test_or_unions(self):
        a, b = BitArray(32), BitArray(32)
        a.set(1)
        b.set(2)
        merged = a | b
        assert merged.get(1) and merged.get(2)
        assert a.popcount() == 1  # inputs untouched

    def test_ior_in_place(self):
        a, b = BitArray(32), BitArray(32)
        b.set(5)
        a.ior(b)
        assert a.get(5)

    def test_and_intersects(self):
        a, b = BitArray(32), BitArray(32)
        a.set(1)
        a.set(2)
        b.set(2)
        assert (a & b).popcount() == 1

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitArray(32) | BitArray(64)

    def test_is_subset_of(self):
        small, big = BitArray(32), BitArray(32)
        small.set(3)
        big.set(3)
        big.set(7)
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)

    def test_covers_positions(self):
        bits = BitArray(32)
        for index in (1, 2, 3):
            bits.set(index)
        assert bits.covers_positions([1, 3])
        assert not bits.covers_positions([1, 4])
        assert bits.covers_positions([])  # vacuously true


class TestSerialization:
    def test_roundtrip(self):
        bits = BitArray(64)
        for index in (0, 7, 8, 63):
            bits.set(index)
        assert BitArray.from_bytes(bits.to_bytes()) == bits

    def test_byte_layout_bip37(self):
        bits = BitArray(16)
        bits.set(0)
        bits.set(9)
        payload = bits.to_bytes()
        assert payload[0] == 0b0000_0001
        assert payload[1] == 0b0000_0010

    def test_serialized_length(self):
        assert len(BitArray(256).to_bytes()) == 32

    def test_copy_is_independent(self):
        bits = BitArray(16)
        clone = bits.copy()
        clone.set(3)
        assert not bits.get(3)

    def test_equality_and_hash(self):
        a, b = BitArray(16), BitArray(16)
        a.set(1)
        b.set(1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitArray(16)
