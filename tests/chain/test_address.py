"""Unit tests for repro.chain.address."""

import pytest

from repro.chain.address import (
    address_item,
    is_valid_address,
    synthetic_address,
)
from repro.crypto.encoding import base58check_decode


class TestSyntheticAddress:
    def test_deterministic(self):
        assert synthetic_address(7) == synthetic_address(7)
        assert synthetic_address(b"seed") == synthetic_address(b"seed")

    def test_distinct_seeds_distinct_addresses(self):
        addresses = {synthetic_address(i) for i in range(200)}
        assert len(addresses) == 200

    def test_int_and_bytes_namespaces(self):
        # An int seed is its 8-byte little-endian form.
        assert synthetic_address(1) == synthetic_address(
            (1).to_bytes(8, "little")
        )

    def test_starts_with_one(self):
        """Mainnet P2PKH version byte 0x00 => leading '1', like Table III."""
        for seed in range(20):
            assert synthetic_address(seed).startswith("1")

    def test_length_plausible(self):
        for seed in range(20):
            assert 25 <= len(synthetic_address(seed)) <= 35

    def test_payload_is_20_bytes(self):
        _version, payload = base58check_decode(synthetic_address(3))
        assert len(payload) == 20

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            synthetic_address(-1)


class TestValidation:
    def test_accepts_generated(self):
        assert is_valid_address(synthetic_address(11))

    def test_rejects_garbage(self):
        assert not is_valid_address("not-an-address")
        assert not is_valid_address("")

    def test_rejects_corrupted_checksum(self):
        address = synthetic_address(12)
        tampered = address[:-1] + ("2" if address[-1] != "2" else "3")
        assert not is_valid_address(tampered)


class TestAddressItem:
    def test_is_utf8_of_string(self):
        address = synthetic_address(5)
        assert address_item(address) == address.encode("utf-8")

    def test_distinct_addresses_distinct_items(self):
        assert address_item(synthetic_address(1)) != address_item(
            synthetic_address(2)
        )
