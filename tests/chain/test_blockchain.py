"""Unit tests for the Blockchain container."""

import pytest

from repro.chain.address import synthetic_address
from repro.chain.block import Block, BlockHeader, build_tx_merkle_tree
from repro.chain.blockchain import Blockchain, header_storage_bytes
from repro.chain.transaction import Transaction, TxInput, TxOutput
from repro.crypto.hashing import HASH_SIZE
from repro.errors import ChainError

A1 = synthetic_address(1)


def make_block(height, prev_hash, merkle_root=None):
    txs = [Transaction([TxInput.coinbase(height)], [TxOutput(A1, 50)])]
    tree = build_tx_merkle_tree(txs)
    header = BlockHeader(
        prev_hash, merkle_root or tree.root, 1_230_000_000 + height
    )
    return Block(header, txs, height)


def make_chain(length):
    chain = Blockchain()
    prev = b"\x00" * HASH_SIZE
    for height in range(length):
        block = make_block(height, prev)
        chain.append(block)
        prev = block.header.block_id()
    return chain


class TestAppend:
    def test_builds_and_links(self):
        chain = make_chain(5)
        assert len(chain) == 5
        assert chain.tip_height == 4
        for height in range(1, 5):
            assert (
                chain.header_at(height).prev_hash
                == chain.header_at(height - 1).block_id()
            )

    def test_wrong_height_rejected(self):
        chain = make_chain(2)
        orphan = make_block(5, chain.header_at(1).block_id())
        with pytest.raises(ChainError):
            chain.append(orphan)

    def test_bad_linkage_rejected(self):
        chain = make_chain(2)
        unlinked = make_block(2, b"\xab" * HASH_SIZE)
        with pytest.raises(ChainError):
            chain.append(unlinked)

    def test_bad_merkle_root_rejected(self):
        chain = make_chain(1)
        bad = make_block(
            1, chain.header_at(0).block_id(), merkle_root=b"\xcd" * HASH_SIZE
        )
        with pytest.raises(ChainError):
            chain.append(bad)


class TestAccess:
    def test_block_at_bounds(self):
        chain = make_chain(3)
        assert chain.block_at(2).height == 2
        with pytest.raises(ChainError):
            chain.block_at(3)
        with pytest.raises(ChainError):
            chain.block_at(-1)

    def test_empty_chain_has_no_tip(self):
        with pytest.raises(ChainError):
            Blockchain().tip_height

    def test_headers_match_blocks(self):
        chain = make_chain(4)
        headers = chain.headers()
        assert len(headers) == 4
        assert all(
            headers[h] == chain.block_at(h).header for h in range(4)
        )

    def test_blocks_range(self):
        chain = make_chain(6)
        middle = chain.blocks(2, 4)
        assert [b.height for b in middle] == [2, 3, 4]
        assert [b.height for b in chain.blocks()] == list(range(6))
        with pytest.raises(ChainError):
            chain.blocks(4, 2)
        with pytest.raises(ChainError):
            chain.blocks(0, 6)

    def test_iteration(self):
        chain = make_chain(3)
        assert [b.height for b in chain] == [0, 1, 2]


class TestStorage:
    def test_header_storage_bytes(self):
        chain = make_chain(3)
        assert header_storage_bytes(chain.headers()) == 3 * 80
