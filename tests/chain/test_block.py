"""Unit tests for blocks and header extensions."""

import pytest

from repro.bloom.filter import BloomFilter
from repro.chain.address import synthetic_address
from repro.chain.block import (
    BASE_HEADER_SIZE,
    Block,
    BlockHeader,
    BloomExtension,
    BloomHashExtension,
    BloomHashSmtExtension,
    BmtExtension,
    LvqExtension,
    NoExtension,
    build_tx_merkle_tree,
)
from repro.chain.transaction import Transaction, TxInput, TxOutput
from repro.crypto.encoding import ByteReader
from repro.crypto.hashing import sha256

A1 = synthetic_address(1)
A2 = synthetic_address(2)


def make_block(height=1, extra_tx=True):
    txs = [Transaction([TxInput.coinbase(height)], [TxOutput(A1, 50)])]
    if extra_tx:
        txs.append(
            Transaction(
                [TxInput(b"\x22" * 32, 0, A1, 50)],
                [TxOutput(A2, 30), TxOutput(A1, 20)],
            )
        )
    tree = build_tx_merkle_tree(txs)
    header = BlockHeader(b"\x00" * 32, tree.root, 1_230_000_000)
    return Block(header, txs, height)


class TestHeaderCore:
    def test_base_header_is_80_bytes(self):
        header = BlockHeader(b"\x00" * 32, b"\x01" * 32, 0)
        assert header.size_bytes() == BASE_HEADER_SIZE
        assert len(header.serialize()) == 80

    def test_block_id_changes_with_nonce(self):
        a = BlockHeader(b"\x00" * 32, b"\x01" * 32, 0, nonce=0)
        b = BlockHeader(b"\x00" * 32, b"\x01" * 32, 0, nonce=1)
        assert a.block_id() != b.block_id()

    def test_block_id_covers_extension(self):
        """Linkage authenticates commitments: different roots, different id."""
        ext_a = LvqExtension(sha256(b"a"), sha256(b"s"))
        ext_b = LvqExtension(sha256(b"b"), sha256(b"s"))
        a = BlockHeader(b"\x00" * 32, b"\x01" * 32, 0, ext_a)
        b = BlockHeader(b"\x00" * 32, b"\x01" * 32, 0, ext_b)
        assert a.block_id() != b.block_id()

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockHeader(b"short", b"\x01" * 32, 0)
        with pytest.raises(ValueError):
            BlockHeader(b"\x00" * 32, b"short", 0)


class TestExtensions:
    def test_sizes(self):
        bf = BloomFilter(8 * 96, 3)
        assert NoExtension().size_bytes() == 0
        assert BloomExtension(bf).size_bytes() == 96
        assert BloomHashExtension(sha256(b"x")).size_bytes() == 32
        assert LvqExtension(sha256(b"a"), sha256(b"b")).size_bytes() == 64
        assert (
            BloomHashSmtExtension(sha256(b"a"), sha256(b"b")).size_bytes() == 64
        )
        assert BmtExtension(sha256(b"a")).size_bytes() == 32

    @pytest.mark.parametrize(
        "extension,kind,bloom_bytes",
        [
            (NoExtension(), 0, 0),
            (BloomHashExtension(sha256(b"h")), 2, 0),
            (LvqExtension(sha256(b"a"), sha256(b"b")), 3, 0),
            (BloomHashSmtExtension(sha256(b"a"), sha256(b"b")), 4, 0),
            (BmtExtension(sha256(b"a")), 5, 0),
        ],
    )
    def test_header_roundtrip(self, extension, kind, bloom_bytes):
        header = BlockHeader(b"\x00" * 32, b"\x01" * 32, 7, extension)
        reader = ByteReader(header.serialize())
        restored = BlockHeader.deserialize(reader, kind, bloom_bytes)
        reader.finish()
        assert restored == header
        assert restored.extension == extension

    def test_bloom_extension_roundtrip(self):
        bf = BloomFilter(8 * 96, 3)
        bf.add(b"addr")
        header = BlockHeader(b"\x00" * 32, b"\x01" * 32, 7, BloomExtension(bf))
        reader = ByteReader(header.serialize())
        restored = BlockHeader.deserialize(reader, 1, 96)
        reader.finish()
        assert restored.extension.bloom.bits == bf.bits

    def test_lvq_header_is_144_bytes(self):
        """The paper's point: LVQ headers stay 'dozens of bytes' bigger."""
        header = BlockHeader(
            b"\x00" * 32,
            b"\x01" * 32,
            0,
            LvqExtension(sha256(b"a"), sha256(b"b")),
        )
        assert header.size_bytes() == 144

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomHashExtension(b"short")
        with pytest.raises(ValueError):
            LvqExtension(b"short", sha256(b"b"))
        with pytest.raises(ValueError):
            BmtExtension(b"short")


class TestBlock:
    def test_address_counts_per_distinct_tx(self):
        block = make_block()
        counts = block.address_counts()
        assert counts[A1] == 2  # coinbase output + second tx (in+out = once)
        assert counts[A2] == 1

    def test_unique_addresses_sorted(self):
        block = make_block()
        assert block.unique_addresses() == sorted([A1, A2])

    def test_transactions_involving(self):
        block = make_block()
        assert len(block.transactions_involving(A1)) == 2
        assert len(block.transactions_involving(A2)) == 1
        assert block.transactions_involving(synthetic_address(99)) == []

    def test_body_roundtrip(self):
        block = make_block()
        restored = Block.body_from_bytes(block.body_bytes())
        assert restored == block.transactions

    def test_merkle_tree_matches_header(self):
        block = make_block()
        assert block.merkle_tree().root == block.header.merkle_root

    def test_size_bytes(self):
        block = make_block()
        assert block.size_bytes() == block.header.size_bytes() + len(
            block.body_bytes()
        )

    def test_negative_height_rejected(self):
        header = BlockHeader(b"\x00" * 32, b"\x01" * 32, 0)
        with pytest.raises(ValueError):
            Block(header, [], -1)

    def test_empty_merkle_tree_rejected(self):
        with pytest.raises(ValueError):
            build_tx_merkle_tree([])
