"""Tests for Algorithm 1 and the segment division — Tables I and II verbatim."""

import pytest

from repro.chain.segments import (
    covering_spans,
    is_anchor_for,
    merge_set,
    merge_span,
    segment_spans,
)
from repro.errors import ChainError


class TestTableI:
    """The paper's Table I, exactly (segment length >= 8)."""

    @pytest.mark.parametrize(
        "height,expected",
        [
            (1, [1]),
            (2, [1, 2]),
            (3, [3]),
            (4, [1, 2, 3, 4]),
            (5, [5]),
            (6, [5, 6]),
            (7, [7]),
            (8, [1, 2, 3, 4, 5, 6, 7, 8]),
        ],
    )
    def test_merge_sets(self, height, expected):
        assert merge_set(height, 8) == expected

    def test_counts_column(self):
        counts = [len(merge_set(h, 8)) for h in range(1, 9)]
        assert counts == [1, 2, 1, 4, 1, 2, 1, 8]


class TestMergeSpan:
    def test_segment_cap(self):
        """With M=4, height 8 merges only its own segment [5,8]."""
        assert merge_span(8, 4) == (5, 8)

    def test_odd_heights_merge_self(self):
        for height in (1, 3, 5, 99, 1001):
            assert merge_span(height, 256) == (height, height)

    def test_segment_boundary_merges_whole_segment(self):
        assert merge_span(256, 256) == (1, 256)
        assert merge_span(512, 256) == (257, 512)

    def test_size_is_power_of_two(self):
        for height in range(1, 300):
            start, end = merge_span(height, 64)
            size = end - start + 1
            assert size & (size - 1) == 0
            assert end == height

    def test_size_divides_in_segment_position(self):
        for height in range(1, 300):
            start, end = merge_span(height, 64)
            position = height % 64 or 64
            assert position % (end - start + 1) == 0

    def test_validation(self):
        with pytest.raises(ChainError):
            merge_span(0, 8)
        with pytest.raises(ChainError):
            merge_span(-3, 8)
        with pytest.raises(ChainError):
            merge_span(5, 6)  # M not a power of two
        with pytest.raises(ChainError):
            merge_span(5, 0)


class TestTableII:
    """The paper's Table II, exactly (M = 256, heights from 1)."""

    @pytest.mark.parametrize(
        "tip,expected_tail",
        [
            (464, [(257, 384), (385, 448), (449, 464)]),
            (465, [(257, 384), (385, 448), (449, 464), (465, 465)]),
            (466, [(257, 384), (385, 448), (449, 464), (465, 466)]),
        ],
    )
    def test_sub_segments(self, tip, expected_tail):
        spans = segment_spans(tip, 256)
        assert spans[0] == (1, 256)  # one complete segment first
        assert spans[1:] == expected_tail

    def test_power_series_lengths(self):
        # 464 - 256 = 208 = 2^7 + 2^6 + 2^4 as the paper decomposes it.
        tail = segment_spans(464, 256)[1:]
        assert [end - start + 1 for start, end in tail] == [128, 64, 16]


class TestSegmentSpans:
    def test_exact_multiple_all_complete(self):
        spans = segment_spans(512, 256)
        assert spans == [(1, 256), (257, 512)]

    def test_tiny_chain(self):
        assert segment_spans(1, 256) == [(1, 1)]
        assert segment_spans(3, 256) == [(1, 2), (3, 3)]

    def test_zero_blocks(self):
        assert segment_spans(0, 256) == []

    def test_spans_partition_heights(self):
        for tip in (1, 7, 64, 100, 255, 256, 257, 464, 1000):
            spans = segment_spans(tip, 64)
            covered = [h for start, end in spans for h in range(start, end + 1)]
            assert covered == list(range(1, tip + 1))

    def test_sub_segment_lengths_descend(self):
        for tip in (100, 463, 999):
            spans = segment_spans(tip, 256)
            tail = [
                end - start + 1 for start, end in spans if end - start + 1 < 256
            ]
            assert tail == sorted(tail, reverse=True)

    def test_negative_tip_rejected(self):
        with pytest.raises(ChainError):
            segment_spans(-1, 256)


class TestCoveringSpans:
    def test_anchor_is_segment_end(self):
        for anchor, start, end in covering_spans(464, 256):
            assert anchor == end
            assert merge_span(anchor, 256) == (start, end)

    def test_matches_segment_spans(self):
        assert [
            (start, end) for _a, start, end in covering_spans(466, 256)
        ] == segment_spans(466, 256)

    def test_is_anchor_for(self):
        assert is_anchor_for(384, 257, 384, 256)
        assert not is_anchor_for(384, 1, 384, 256)
        assert not is_anchor_for(383, 257, 383, 256)  # 383 merges only itself
        assert is_anchor_for(383, 383, 383, 256)
        assert not is_anchor_for(0, 0, 0, 256)
