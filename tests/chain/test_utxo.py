"""Unit tests for UTXO tracking and Equation-1 balances."""

import pytest

from repro.chain.address import synthetic_address
from repro.chain.transaction import Transaction, TxInput, TxOutput
from repro.chain.utxo import UtxoSet, balance_from_history
from repro.errors import ChainError

A1 = synthetic_address(1)
A2 = synthetic_address(2)
A3 = synthetic_address(3)


def coinbase(height, address, value=50):
    return Transaction([TxInput.coinbase(height)], [TxOutput(address, value)])


class TestUtxoSet:
    def test_coinbase_creates_outputs(self):
        utxo = UtxoSet()
        tx = coinbase(1, A1)
        utxo.apply_transaction(tx)
        assert (tx.txid(), 0) in utxo
        assert utxo.balance(A1) == 50

    def test_spend_moves_value(self):
        utxo = UtxoSet()
        mint = coinbase(1, A1)
        utxo.apply_transaction(mint)
        spend = Transaction(
            [TxInput(mint.txid(), 0, A1, 50)],
            [TxOutput(A2, 30), TxOutput(A1, 20)],
        )
        utxo.apply_transaction(spend)
        assert utxo.balance(A1) == 20
        assert utxo.balance(A2) == 30
        assert (mint.txid(), 0) not in utxo

    def test_double_spend_rejected(self):
        utxo = UtxoSet()
        mint = coinbase(1, A1)
        utxo.apply_transaction(mint)
        spend = Transaction(
            [TxInput(mint.txid(), 0, A1, 50)], [TxOutput(A2, 50)]
        )
        utxo.apply_transaction(spend)
        with pytest.raises(ChainError):
            utxo.apply_transaction(
                Transaction(
                    [TxInput(mint.txid(), 0, A1, 50)], [TxOutput(A3, 50)]
                )
            )

    def test_unknown_outpoint_rejected(self):
        utxo = UtxoSet()
        with pytest.raises(ChainError):
            utxo.apply_transaction(
                Transaction(
                    [TxInput(b"\x44" * 32, 0, A1, 50)], [TxOutput(A2, 50)]
                )
            )

    def test_lying_input_address_rejected(self):
        utxo = UtxoSet()
        mint = coinbase(1, A1)
        utxo.apply_transaction(mint)
        with pytest.raises(ChainError):
            utxo.apply_transaction(
                Transaction(
                    [TxInput(mint.txid(), 0, A2, 50)], [TxOutput(A3, 50)]
                )
            )

    def test_lying_input_value_rejected(self):
        utxo = UtxoSet()
        mint = coinbase(1, A1)
        utxo.apply_transaction(mint)
        with pytest.raises(ChainError):
            utxo.apply_transaction(
                Transaction(
                    [TxInput(mint.txid(), 0, A1, 49)], [TxOutput(A3, 49)]
                )
            )

    def test_apply_block(self):
        utxo = UtxoSet()
        mint = coinbase(1, A1)
        spend = Transaction(
            [TxInput(mint.txid(), 0, A1, 50)], [TxOutput(A2, 50)]
        )
        utxo.apply_block([mint, spend])  # same-block spend allowed
        assert utxo.balance(A2) == 50

    def test_outpoints_of(self):
        utxo = UtxoSet()
        mint = coinbase(1, A1)
        utxo.apply_transaction(mint)
        assert utxo.outpoints_of(A1) == {(mint.txid(), 0): 50}
        assert utxo.outpoints_of(A2) == {}

    def test_value_of_and_len(self):
        utxo = UtxoSet()
        mint = coinbase(1, A1)
        utxo.apply_transaction(mint)
        assert utxo.value_of((mint.txid(), 0)) == 50
        assert len(utxo) == 1


class TestEquation1:
    def test_receive_only(self):
        history = [coinbase(1, A1), coinbase(2, A1, 25)]
        assert balance_from_history(A1, history) == 75

    def test_receive_and_spend(self):
        mint = coinbase(1, A1)
        spend = Transaction(
            [TxInput(mint.txid(), 0, A1, 50)],
            [TxOutput(A2, 30), TxOutput(A1, 20)],
        )
        assert balance_from_history(A1, [mint, spend]) == 20
        assert balance_from_history(A2, [mint, spend]) == 30

    def test_unrelated_transactions_ignored(self):
        history = [coinbase(1, A1), coinbase(2, A2)]
        assert balance_from_history(A3, history) == 0

    def test_matches_utxo_view(self):
        """Equation 1 over full history equals the UTXO set balance."""
        utxo = UtxoSet()
        mint1 = coinbase(1, A1)
        mint2 = coinbase(2, A2)
        spend = Transaction(
            [TxInput(mint1.txid(), 0, A1, 50)],
            [TxOutput(A2, 10), TxOutput(A1, 40)],
        )
        history = [mint1, mint2, spend]
        for tx in history:
            utxo.apply_transaction(tx)
        for address in (A1, A2, A3):
            assert balance_from_history(address, history) == utxo.balance(
                address
            )
