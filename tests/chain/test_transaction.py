"""Unit tests for repro.chain.transaction."""

import pytest

from repro.chain.address import synthetic_address
from repro.chain.transaction import (
    COINBASE_PREV_TXID,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.errors import EncodingError

A1 = synthetic_address(1)
A2 = synthetic_address(2)
A3 = synthetic_address(3)


def simple_tx():
    return Transaction(
        [TxInput(b"\x11" * 32, 0, A1, 100)],
        [TxOutput(A2, 60), TxOutput(A3, 40)],
    )


class TestTxOutput:
    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            TxOutput(A1, -1)

    def test_equality(self):
        assert TxOutput(A1, 5) == TxOutput(A1, 5)
        assert TxOutput(A1, 5) != TxOutput(A1, 6)


class TestTxInput:
    def test_coinbase_marker(self):
        coinbase = TxInput.coinbase(42)
        assert coinbase.is_coinbase
        assert coinbase.prev_txid == COINBASE_PREV_TXID
        assert coinbase.address == ""
        assert coinbase.value == 42  # height makes coinbases unique

    def test_regular_input_not_coinbase(self):
        assert not TxInput(b"\x11" * 32, 0, A1, 5).is_coinbase

    def test_validation(self):
        with pytest.raises(ValueError):
            TxInput(b"short", 0, A1, 5)
        with pytest.raises(ValueError):
            TxInput(b"\x11" * 32, -1, A1, 5)
        with pytest.raises(ValueError):
            TxInput(b"\x11" * 32, 0, A1, -5)


class TestTransaction:
    def test_txid_deterministic(self):
        assert simple_tx().txid() == simple_tx().txid()

    def test_txid_differs_on_any_change(self):
        base = simple_tx()
        other = Transaction(
            base.inputs, [TxOutput(A2, 61), TxOutput(A3, 39)]
        )
        assert base.txid() != other.txid()

    def test_addresses_ordered_unique(self):
        tx = Transaction(
            [TxInput(b"\x11" * 32, 0, A1, 100)],
            [TxOutput(A2, 50), TxOutput(A1, 50)],  # A1 appears twice
        )
        assert tx.addresses() == [A1, A2]

    def test_coinbase_placeholder_excluded(self):
        tx = Transaction([TxInput.coinbase(1)], [TxOutput(A1, 50)])
        assert tx.addresses() == [A1]
        assert tx.is_coinbase

    def test_involves(self):
        tx = simple_tx()
        assert tx.involves(A1) and tx.involves(A2) and tx.involves(A3)
        assert not tx.involves(synthetic_address(99))

    def test_equation1_helpers(self):
        tx = simple_tx()
        assert tx.received_by(A2) == 60
        assert tx.received_by(A1) == 0
        assert tx.sent_by(A1) == 100
        assert tx.sent_by(A2) == 0

    def test_needs_inputs_and_outputs(self):
        with pytest.raises(ValueError):
            Transaction([], [TxOutput(A1, 1)])
        with pytest.raises(ValueError):
            Transaction([TxInput.coinbase(1)], [])

    def test_equality_by_txid(self):
        assert simple_tx() == simple_tx()
        assert hash(simple_tx()) == hash(simple_tx())


class TestSerialization:
    def test_roundtrip(self):
        tx = simple_tx()
        restored = Transaction.from_bytes(tx.serialize())
        assert restored == tx
        assert restored.inputs == tx.inputs
        assert restored.outputs == tx.outputs
        assert restored.version == tx.version

    def test_coinbase_roundtrip(self):
        tx = Transaction([TxInput.coinbase(9)], [TxOutput(A1, 50)])
        assert Transaction.from_bytes(tx.serialize()) == tx

    def test_size_bytes(self):
        tx = simple_tx()
        assert tx.size_bytes() == len(tx.serialize())

    def test_trailing_garbage_rejected(self):
        with pytest.raises(EncodingError):
            Transaction.from_bytes(simple_tx().serialize() + b"\x00")

    def test_truncated_rejected(self):
        with pytest.raises(EncodingError):
            Transaction.from_bytes(simple_tx().serialize()[:-3])

    def test_size_realistic(self):
        """A 1-in 2-out transaction sits in the ~100-200 byte range."""
        assert 80 <= simple_tx().size_bytes() <= 220
