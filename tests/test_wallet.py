"""Tests for the watch-only wallet."""

import pytest

from repro.chain.utxo import balance_from_history
from repro.errors import ReproError, VerificationError
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.query.adversary import MaliciousFullNode, omit_one_transaction
from repro.wallet import Wallet


@pytest.fixture()
def wallet(lvq_system, probe_addresses):
    light_node = LightNode(lvq_system.headers(), lvq_system.config)
    return Wallet(light_node, probe_addresses.values())


class TestWatching:
    def test_watch_is_idempotent(self, wallet, probe_addresses):
        before = len(wallet.addresses)
        wallet.watch(probe_addresses["Addr1"])
        assert len(wallet.addresses) == before

    def test_unwatch(self, wallet, probe_addresses):
        wallet.unwatch(probe_addresses["Addr1"])
        assert probe_addresses["Addr1"] not in wallet.addresses

    def test_empty_address_rejected(self, wallet):
        with pytest.raises(ValueError):
            wallet.watch("")

    def test_balance_requires_refresh(self, wallet, probe_addresses):
        with pytest.raises(VerificationError):
            wallet.balance(probe_addresses["Addr1"])


class TestRefresh:
    def test_balances_match_truth(self, workload, lvq_system, wallet):
        full_node = FullNode(lvq_system)
        balances = wallet.refresh(full_node)
        for name, address in workload.probe_addresses.items():
            expected = balance_from_history(
                address, (tx for _h, tx in workload.history_of(address))
            )
            assert balances[address] == expected, name

    def test_total_balance(self, workload, lvq_system, wallet):
        wallet.refresh(FullNode(lvq_system))
        assert wallet.total_balance() == sum(wallet.balances().values())

    def test_activity_sorted_by_height(self, lvq_system, wallet):
        wallet.refresh(FullNode(lvq_system))
        heights = [height for height, _addr, _tx in wallet.activity()]
        assert heights == sorted(heights)

    def test_refresh_empty_wallet(self, lvq_system, probe_addresses):
        light_node = LightNode(lvq_system.headers(), lvq_system.config)
        wallet = Wallet(light_node)
        assert wallet.refresh(FullNode(lvq_system)) == {}

    def test_lying_node_rejected_and_state_kept(
        self, workload, lvq_system, wallet, probe_addresses
    ):
        honest = FullNode(lvq_system)
        wallet.refresh(honest)
        before = wallet.balances()
        liar = MaliciousFullNode(lvq_system, omit_one_transaction)
        with pytest.raises(VerificationError):
            wallet.refresh(liar)
        assert wallet.balances() == before


class TestSync:
    def test_sync_grows_and_refreshes(self, workload, probe_addresses):
        from repro.query.builder import build_system
        from repro.query.config import SystemConfig

        config = SystemConfig.lvq(bf_bytes=192, segment_len=16)
        system = build_system(workload.bodies, config)
        stale_light = LightNode(system.headers()[:30], config)
        wallet = Wallet(stale_light, [probe_addresses["Addr6"]])
        full_node = FullNode(system)
        replaced, appended = wallet.sync(full_node)
        assert replaced == 0
        assert appended == len(workload.bodies) - 30
        truth = balance_from_history(
            probe_addresses["Addr6"],
            (
                tx
                for _h, tx in workload.history_of(probe_addresses["Addr6"])
            ),
        )
        assert wallet.balance(probe_addresses["Addr6"]) == truth


class TestWalletReorg:
    def test_wallet_follows_longer_fork(self, probe_addresses):
        from repro.query.builder import build_system
        from repro.query.config import SystemConfig
        from repro.workload.generator import (
            WorkloadParams,
            generate_workload,
        )
        from repro.workload.profiles import ProbeProfile

        config = SystemConfig.lvq(bf_bytes=160, segment_len=8)
        base = generate_workload(
            WorkloadParams(num_blocks=16, txs_per_block=6, seed=8,
                           probes=[ProbeProfile("W", 3, 2)])
        )
        longer = generate_workload(
            WorkloadParams(num_blocks=24, txs_per_block=6, seed=9,
                           probes=[ProbeProfile("W", 3, 2)])
        )
        system_a = build_system(base.bodies, config)
        bodies_b = base.bodies[:9] + longer.bodies[9:25]
        system_b = build_system(bodies_b, config)

        wallet = Wallet(
            LightNode(system_a.headers(), config),
            [base.probe_addresses["W"]],
        )
        wallet.refresh(FullNode(system_a))
        replaced, appended = wallet.sync(FullNode(system_b))
        assert replaced == 8 and appended == 16
        # Balances now reflect fork B's history for the shared address.
        address = base.probe_addresses["W"]
        truth = 0
        for height, body in enumerate(bodies_b):
            for tx in body:
                truth += tx.received_by(address) - tx.sent_by(address)
        assert wallet.balance(address) == truth


class TestPersistence:
    def test_save_load_roundtrip(self, lvq_system, wallet, tmp_path):
        wallet.refresh(FullNode(lvq_system))
        wallet.save(tmp_path / "wallet")
        restored = Wallet.load(tmp_path / "wallet")
        assert restored.addresses == wallet.addresses
        assert restored.light_node.tip_height == wallet.light_node.tip_height
        # Fresh instance has no verified state until it refreshes.
        restored.refresh(FullNode(lvq_system))
        assert restored.balances() == wallet.balances()

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(ReproError):
            Wallet.load(tmp_path / "nope")

    def test_load_corrupt_manifest(self, lvq_system, wallet, tmp_path):
        wallet.save(tmp_path / "wallet")
        (tmp_path / "wallet" / "wallet.json").write_text("{oops")
        with pytest.raises(ReproError):
            Wallet.load(tmp_path / "wallet")
