"""Unit tests for repro.crypto.encoding (varints, Base58Check, ByteReader)."""

import pytest

from repro.crypto.encoding import (
    ByteReader,
    base58_decode,
    base58_encode,
    base58check_decode,
    base58check_encode,
    read_varint,
    varint_size,
    write_var_bytes,
    write_varint,
)
from repro.errors import EncodingError


class TestVarint:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (0xFC, b"\xfc"),
            (0xFD, b"\xfd\xfd\x00"),
            (0xFFFF, b"\xfd\xff\xff"),
            (0x10000, b"\xfe\x00\x00\x01\x00"),
            (0xFFFF_FFFF, b"\xfe\xff\xff\xff\xff"),
            (0x1_0000_0000, b"\xff\x00\x00\x00\x00\x01\x00\x00\x00"),
        ],
    )
    def test_bitcoin_compact_size_vectors(self, value, encoded):
        assert write_varint(value) == encoded
        assert read_varint(encoded) == (value, len(encoded))

    @pytest.mark.parametrize(
        "value", [0, 1, 0xFC, 0xFD, 300, 0xFFFF, 70000, 0xFFFF_FFFF, 2**40]
    )
    def test_roundtrip(self, value):
        encoded = write_varint(value)
        assert read_varint(encoded) == (value, len(encoded))
        assert varint_size(value) == len(encoded)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            write_varint(-1)
        with pytest.raises(EncodingError):
            varint_size(-5)

    def test_overflow_rejected(self):
        with pytest.raises(EncodingError):
            write_varint(2**64)

    def test_truncated_rejected(self):
        with pytest.raises(EncodingError):
            read_varint(b"\xfd\x01")

    def test_empty_rejected(self):
        with pytest.raises(EncodingError):
            read_varint(b"")

    def test_non_canonical_rejected(self):
        # 1 encoded in the 3-byte form must be refused.
        with pytest.raises(EncodingError):
            read_varint(b"\xfd\x01\x00")

    def test_offset_decoding(self):
        payload = b"\xaa" + write_varint(300)
        assert read_varint(payload, 1) == (300, 4)


class TestByteReader:
    def test_sequential_reads(self):
        reader = ByteReader(b"\x02abXY")
        assert reader.varint() == 2
        assert reader.bytes(2) == b"ab"
        assert reader.bytes(2) == b"XY"
        reader.finish()

    def test_var_bytes(self):
        reader = ByteReader(write_var_bytes(b"hello"))
        assert reader.var_bytes() == b"hello"
        reader.finish()

    def test_uint_little_endian(self):
        reader = ByteReader(b"\x01\x02")
        assert reader.uint(2) == 0x0201

    def test_truncation_raises(self):
        reader = ByteReader(b"ab")
        with pytest.raises(EncodingError):
            reader.bytes(3)

    def test_finish_rejects_trailing(self):
        reader = ByteReader(b"ab")
        reader.bytes(1)
        with pytest.raises(EncodingError):
            reader.finish()

    def test_remaining(self):
        reader = ByteReader(b"abcd")
        reader.bytes(1)
        assert reader.remaining == 3


class TestBase58:
    @pytest.mark.parametrize(
        "payload",
        [b"", b"\x00", b"\x00\x00abc", b"hello world", bytes(range(32))],
    )
    def test_roundtrip(self, payload):
        assert base58_decode(base58_encode(payload)) == payload

    def test_leading_zeros_become_ones(self):
        assert base58_encode(b"\x00\x00\x01").startswith("11")

    def test_known_vector(self):
        # Classic test vector from the Bitcoin reference tests.
        assert base58_encode(bytes.fromhex("73696d706c79206120"
                                           "6c6f6e6720737472696e67")) == (
            "2cFupjhnEsSn59qHXstmK2ffpLv2"
        )

    def test_invalid_character_rejected(self):
        with pytest.raises(EncodingError):
            base58_decode("0OIl")  # characters excluded from the alphabet


class TestBase58Check:
    def test_roundtrip(self):
        encoded = base58check_encode(0, b"\x01" * 20)
        version, payload = base58check_decode(encoded)
        assert version == 0
        assert payload == b"\x01" * 20

    def test_version_zero_gives_leading_one(self):
        assert base58check_encode(0, b"\x02" * 20).startswith("1")

    def test_checksum_detects_typos(self):
        encoded = base58check_encode(0, b"\x03" * 20)
        # Swap two distinct characters.
        chars = list(encoded)
        i = next(
            i
            for i in range(1, len(chars) - 1)
            if chars[i] != chars[i + 1]
        )
        chars[i], chars[i + 1] = chars[i + 1], chars[i]
        with pytest.raises(EncodingError):
            base58check_decode("".join(chars))

    def test_too_short_rejected(self):
        with pytest.raises(EncodingError):
            base58check_decode("11")

    def test_bad_version_rejected(self):
        with pytest.raises(EncodingError):
            base58check_encode(256, b"x")
