"""Unit tests for repro.crypto.hashing."""

import hashlib

import pytest

from repro.crypto.hashing import HASH_SIZE, hash160, sha256, sha256d, tagged_hash


class TestSha256:
    def test_matches_hashlib(self):
        assert sha256(b"abc") == hashlib.sha256(b"abc").digest()

    def test_empty_input(self):
        assert sha256(b"") == hashlib.sha256(b"").digest()

    def test_digest_size(self):
        assert len(sha256(b"x")) == HASH_SIZE


class TestSha256d:
    def test_is_double_sha(self):
        assert sha256d(b"abc") == hashlib.sha256(
            hashlib.sha256(b"abc").digest()
        ).digest()

    def test_differs_from_single(self):
        assert sha256d(b"abc") != sha256(b"abc")

    def test_known_bitcoin_vector(self):
        # sha256d("hello") is a widely published test vector.
        assert (
            sha256d(b"hello").hex()
            == "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50"
        )


class TestTaggedHash:
    def test_deterministic(self):
        assert tagged_hash("t", b"data") == tagged_hash("t", b"data")

    def test_tags_separate_domains(self):
        assert tagged_hash("a", b"data") != tagged_hash("b", b"data")

    def test_chunking_is_concatenation(self):
        assert tagged_hash("t", b"ab", b"cd") == tagged_hash("t", b"abcd")

    def test_differs_from_plain_sha(self):
        assert tagged_hash("t", b"data") != sha256(b"data")

    def test_empty_payload_still_tagged(self):
        assert tagged_hash("x") != tagged_hash("y")

    def test_digest_size(self):
        assert len(tagged_hash("t", b"p")) == HASH_SIZE

    def test_matches_bip340_construction(self):
        tag_digest = hashlib.sha256(b"t").digest()
        expected = hashlib.sha256(tag_digest + tag_digest + b"payload").digest()
        assert tagged_hash("t", b"payload") == expected


class TestHash160:
    def test_length(self):
        assert len(hash160(b"pubkey")) == 20

    def test_deterministic(self):
        assert hash160(b"pubkey") == hash160(b"pubkey")

    def test_distinct_inputs(self):
        assert hash160(b"a") != hash160(b"b")


@pytest.mark.parametrize("func", [sha256, sha256d])
def test_avalanche(func):
    """One-bit input changes flip the digest entirely."""
    a = func(b"\x00")
    b = func(b"\x01")
    assert a != b
    differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    assert differing > 64  # far more than a few bits
