"""Fast-path ⇔ naive-path equivalence: byte-identical serialized answers.

The fast prover (inverted index, single-pass multiproofs, position
caching, resolution memoization) must be observationally identical to
the pre-fast-path reference in :mod:`repro.query.naive` — same bytes on
the wire for every system kind, address shape, and query range.  These
tests are the acceptance gate the throughput benchmark also relies on.
"""

import pytest

from repro.query.batch import answer_batch_query
from repro.query.naive import answer_batch_query_naive, answer_query_naive
from repro.query.prover import answer_query
from repro.query.verifier import verify_result


def _addresses_under_test(workload):
    addresses = list(workload.probe_addresses.values())
    addresses.append("never-seen-address")
    return addresses


class TestSingleQueryEquivalence:
    def test_full_range_byte_identical(self, any_system, workload):
        config = any_system.config
        for address in _addresses_under_test(workload):
            fast = answer_query(any_system, address)
            naive = answer_query_naive(any_system, address)
            assert fast.serialize(config) == naive.serialize(config)

    def test_sub_ranges_byte_identical(self, any_system, workload):
        config = any_system.config
        tip = any_system.tip_height
        ranges = [(1, tip), (1, 1), (tip, tip), (2, tip - 3), (5, 20)]
        for address in _addresses_under_test(workload):
            for first, last in ranges:
                fast = answer_query(any_system, address, first, last)
                naive = answer_query_naive(any_system, address, first, last)
                assert fast.serialize(config) == naive.serialize(config), (
                    f"{config.kind.value} range [{first},{last}] diverges "
                    f"for {address[:16]}"
                )

    def test_repeat_queries_hit_memo_and_stay_identical(
        self, any_system, workload
    ):
        """Warm-cache answers must still match the naive oracle."""
        config = any_system.config
        address = workload.probe_addresses["Addr6"]
        any_system.clear_query_caches()
        first_pass = answer_query(any_system, address).serialize(config)
        assert any_system.config.kind is config.kind
        second_pass = answer_query(any_system, address).serialize(config)
        naive = answer_query_naive(any_system, address).serialize(config)
        assert first_pass == second_pass == naive

    def test_fast_answers_still_verify(self, any_system, workload):
        headers = any_system.headers()
        for name in ("Addr1", "Addr3", "Addr6"):
            address = workload.probe_addresses[name]
            result = answer_query(any_system, address)
            history = verify_result(
                result, headers, any_system.config, address
            )
            truth = workload.history_of(address)
            assert [
                (h, tx.txid()) for h, tx in history.transactions
            ] == [(h, tx.txid()) for h, tx in truth]


class TestBatchEquivalence:
    def test_batch_byte_identical(self, any_system, workload):
        config = any_system.config
        addresses = _addresses_under_test(workload)
        fast = answer_batch_query(any_system, addresses)
        naive = answer_batch_query_naive(any_system, addresses)
        assert fast.serialize(config) == naive.serialize(config)

    def test_batch_range_byte_identical(self, any_system, workload):
        config = any_system.config
        addresses = list(workload.probe_addresses.values())[:3]
        fast = answer_batch_query(any_system, addresses, 4, 17)
        naive = answer_batch_query_naive(any_system, addresses, 4, 17)
        assert fast.serialize(config) == naive.serialize(config)


class TestTamperedAnswersDoNotPoisonTheMemo:
    def test_caller_mutation_is_invisible_to_later_queries(
        self, lvq_system, workload
    ):
        config = lvq_system.config
        address = workload.probe_addresses["Addr5"]
        lvq_system.clear_query_caches()
        reference = answer_query(lvq_system, address).serialize(config)

        tampered = answer_query(lvq_system, address)
        for segment in tampered.segments:
            for resolution in segment.resolutions.values():
                if hasattr(resolution, "entries") and resolution.entries:
                    resolution.entries.pop()

        assert answer_query(lvq_system, address).serialize(config) == reference
