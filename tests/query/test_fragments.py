"""Unit tests for fragment/resolution wire formats."""

import pytest

from repro.crypto.encoding import ByteReader
from repro.errors import EncodingError, ProofError
from repro.merkle.bmt import BmtMultiProof
from repro.query.config import SystemConfig
from repro.query.fragments import (
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
    PerBlockAnswer,
    SegmentProof,
    TxWithBranch,
)
from repro.query.prover import answer_query


def _first_of(result, cls):
    if result.segments is not None:
        pools = (seg.resolutions.values() for seg in result.segments)
    else:
        pools = ([a.resolution] for a in result.blocks if a.resolution)
    for pool in pools:
        for resolution in pool:
            if isinstance(resolution, cls):
                return resolution
    return None


class TestResolutionRoundtrips:
    def test_existence(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr5"])
        resolution = _first_of(result, ExistenceResolution)
        assert resolution is not None
        reader = ByteReader(resolution.serialize())
        restored = ExistenceResolution.deserialize(reader)
        reader.finish()
        assert restored.serialize() == resolution.serialize()
        assert restored.smt_branch == resolution.smt_branch

    def test_integral_block(self, lvq_no_smt_system, probe_addresses):
        result = answer_query(lvq_no_smt_system, probe_addresses["Addr6"])
        resolution = _first_of(result, IntegralBlockResolution)
        assert resolution is not None
        reader = ByteReader(resolution.serialize())
        restored = IntegralBlockResolution.deserialize(reader)
        reader.finish()
        assert restored.body == resolution.body
        assert restored.transactions() == resolution.transactions()

    def test_fpm(self, lvq_system):
        """Build an FPM resolution directly from a block's SMT."""
        smt = lvq_system.smts[1]
        proof = smt.prove_inexistence("1zzzzzNotPresent")
        resolution = FpmResolution(proof)
        reader = ByteReader(resolution.serialize())
        restored = FpmResolution.deserialize(reader)
        reader.finish()
        assert restored.serialize() == resolution.serialize()

    def test_existence_needs_entries(self):
        with pytest.raises(ProofError):
            ExistenceResolution(None, [])

    def test_integral_block_needs_body(self):
        with pytest.raises(ProofError):
            IntegralBlockResolution(b"")


class TestTxWithBranch:
    def test_roundtrip(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr5"])
        resolution = _first_of(result, ExistenceResolution)
        entry = resolution.entries[0]
        reader = ByteReader(entry.serialize())
        restored = TxWithBranch.deserialize(reader)
        reader.finish()
        assert restored.transaction == entry.transaction
        assert restored.branch == entry.branch

    def test_component_sizes(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr5"])
        entry = _first_of(result, ExistenceResolution).entries[0]
        assert entry.tx_bytes() + entry.branch_bytes() == len(entry.serialize())


class TestSegmentProof:
    def test_anchor_must_be_end(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr1"])
        segment = result.segments[0]
        with pytest.raises(ProofError):
            SegmentProof(
                segment.anchor - 1,
                segment.start,
                segment.end,
                segment.multiproof,
                {},
            )

    def test_resolution_out_of_range_rejected(
        self, lvq_system, probe_addresses
    ):
        result = answer_query(lvq_system, probe_addresses["Addr5"])
        segment = next(s for s in result.segments if s.resolutions)
        height, resolution = next(iter(segment.resolutions.items()))
        with pytest.raises(ProofError):
            SegmentProof(
                segment.anchor,
                segment.start,
                segment.end,
                segment.multiproof,
                {segment.end + 1: resolution},
            )

    def test_roundtrip(self, lvq_system, probe_addresses):
        config = lvq_system.config
        result = answer_query(lvq_system, probe_addresses["Addr5"])
        for segment in result.segments:
            reader = ByteReader(segment.serialize())
            restored = SegmentProof.deserialize(reader, config)
            reader.finish()
            assert restored.serialize() == segment.serialize()
            assert (restored.anchor, restored.start, restored.end) == (
                segment.anchor,
                segment.start,
                segment.end,
            )

    def test_duplicate_resolution_heights_rejected(
        self, lvq_system, probe_addresses
    ):
        config = lvq_system.config
        result = answer_query(lvq_system, probe_addresses["Addr5"])
        segment = next(s for s in result.segments if s.resolutions)
        payload = segment.serialize()
        # Craft a payload with the resolution list repeated: simplest is to
        # bump the count and duplicate the tail entry bytes.
        from repro.crypto.encoding import write_varint

        height = sorted(segment.resolutions)[0]
        entry = write_varint(height) + b"\x00"  # wrong but parse-level check
        # Instead, exercise the documented behaviour via deserialize of a
        # hand-built duplicate map: SegmentProof.deserialize must reject
        # duplicate heights.  Build bytes: original minus count, plus 2x.
        single = segment.multiproof  # reuse proof
        resolution = segment.resolutions[height]
        from repro.query.fragments import _serialize_resolution

        body = (
            write_varint(segment.anchor)
            + write_varint(segment.start)
            + write_varint(segment.end)
            + single.serialize()
            + write_varint(2)
            + write_varint(height)
            + _serialize_resolution(resolution)
            + write_varint(height)
            + _serialize_resolution(resolution)
        )
        with pytest.raises(EncodingError):
            SegmentProof.deserialize(ByteReader(body), config)


class TestPerBlockAnswer:
    def test_filter_discipline(self, strawman_system):
        config = strawman_system.config
        bf = strawman_system.filters[1]
        # Missing filter on a shipping system.
        with pytest.raises(ProofError):
            PerBlockAnswer(None, None).serialize(config)
        # Spurious filter on a header-BF system.
        header_config = SystemConfig.strawman_header_bf(bf_bytes=96)
        with pytest.raises(ProofError):
            PerBlockAnswer(bf, None).serialize(header_config)

    def test_roundtrip(self, strawman_system, probe_addresses):
        config = strawman_system.config
        result = answer_query(strawman_system, probe_addresses["Addr6"])
        for answer in result.blocks[:10]:
            reader = ByteReader(answer.serialize(config))
            restored = PerBlockAnswer.deserialize(reader, config)
            reader.finish()
            assert restored.serialize(config) == answer.serialize(config)

    def test_bad_resolution_type_rejected(self):
        with pytest.raises(ProofError):
            PerBlockAnswer(None, object())
