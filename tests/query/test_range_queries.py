"""Tests for the range-query extension (verifiable history over a slice).

The paper notes "a query of larger range can be performed similarly";
this extension also supports *smaller* ranges: the prover ships
restricted BMT multiproofs whose out-of-range subtrees are (hash, bf)
stubs, and the verifier guarantees completeness over exactly the
requested height range.
"""

import pytest

from repro.errors import (
    CompletenessError,
    QueryError,
    VerificationError,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.query.prover import answer_query
from repro.query.result import QueryResult
from repro.query.verifier import verify_result


def truth_in_range(workload, address, first, last):
    return [
        (h, tx.txid())
        for h, tx in workload.history_of(address)
        if first <= h <= last
    ]


RANGES = [(1, 5), (3, 19), (16, 17), (17, 48), (1, 48), (33, 48), (5, 40)]


class TestHonestRangeQueries:
    @pytest.mark.parametrize("first,last", RANGES)
    def test_every_system_every_probe(
        self, workload, any_system, probe_addresses, first, last
    ):
        headers = any_system.headers()
        for name, address in probe_addresses.items():
            result = answer_query(any_system, address, first, last)
            history = verify_result(
                result, headers, any_system.config, address, (first, last)
            )
            assert [
                (h, tx.txid()) for h, tx in history.transactions
            ] == truth_in_range(workload, address, first, last), (
                f"{any_system.config.kind.value}/{name} range=[{first},{last}]"
            )

    def test_single_block_range(self, workload, lvq_system, probe_addresses):
        address = probe_addresses["Addr6"]
        active = sorted({h for h, _ in workload.history_of(address)})
        height = active[0]
        result = answer_query(lvq_system, address, height, height)
        history = verify_result(
            result, lvq_system.headers(), lvq_system.config, address
        )
        assert history.heights() == [height]

    def test_range_result_smaller_than_full(
        self, lvq_system, probe_addresses
    ):
        """A narrow range must cost (much) less than the full query."""
        config = lvq_system.config
        address = probe_addresses["Addr1"]
        full = answer_query(lvq_system, address).size_bytes(config)
        narrow = answer_query(lvq_system, address, 20, 24).size_bytes(config)
        assert narrow < full

    def test_stubs_present_only_for_partial_segments(
        self, lvq_system, probe_addresses
    ):
        # A busy address forces descent everywhere, so out-of-range
        # subtrees must appear as stubs in a partial-segment proof.  (A
        # sparse address may legitimately need none: a clean endpoint high
        # in the tree covers the range without descending.)
        address = probe_addresses["Addr6"]
        result = answer_query(lvq_system, address, 3, 10)  # inside [1,16]
        [segment] = result.segments
        assert segment.multiproof.num_stubs() > 0
        full = answer_query(lvq_system, address)
        assert all(s.multiproof.num_stubs() == 0 for s in full.segments)

    def test_rpc_path(self, workload, lvq_system, probe_addresses):
        full_node = FullNode(lvq_system)
        light_node = LightNode.from_full_node(full_node)
        address = probe_addresses["Addr5"]
        history = light_node.query_history(
            full_node, address, first_height=10, last_height=30
        )
        assert [
            (h, tx.txid()) for h, tx in history.transactions
        ] == truth_in_range(workload, address, 10, 30)


class TestRangeValidation:
    def test_bad_ranges_rejected_at_prover(self, lvq_system):
        with pytest.raises(QueryError):
            answer_query(lvq_system, "1x", 0, 5)
        with pytest.raises(QueryError):
            answer_query(lvq_system, "1x", 5, 3)
        with pytest.raises(QueryError):
            answer_query(lvq_system, "1x", 1, lvq_system.tip_height + 1)

    def test_result_constructor_validates_range(self):
        from repro.query.config import SystemKind

        with pytest.raises(Exception):
            QueryResult(
                SystemKind.LVQ, "1x", 10, segments=[], first_height=5,
                last_height=11,
            )

    def test_answered_range_must_match_request(
        self, lvq_system, probe_addresses
    ):
        """A prover silently narrowing the question is caught."""
        address = probe_addresses["Addr6"]
        narrow = answer_query(lvq_system, address, 5, 20)
        with pytest.raises(CompletenessError):
            verify_result(
                narrow,
                lvq_system.headers(),
                lvq_system.config,
                address,
                expected_range=(1, 48),
            )


class TestRangeTampering:
    def test_stub_hiding_inrange_block_rejected(
        self, workload, lvq_system, probe_addresses
    ):
        """Replaying a narrower proof as a wider one must fail: its stubs
        would intrude into the queried range."""
        address = probe_addresses["Addr6"]
        narrow = answer_query(lvq_system, address, 5, 8)
        # Claim the same proofs answer [3,10].
        forged = QueryResult(
            narrow.kind,
            address,
            narrow.tip_height,
            segments=narrow.segments,
            first_height=3,
            last_height=10,
        )
        with pytest.raises(VerificationError):
            verify_result(
                forged, lvq_system.headers(), lvq_system.config, address
            )

    def test_dropped_partial_segment_rejected(
        self, lvq_system, probe_addresses
    ):
        address = probe_addresses["Addr4"]
        result = answer_query(lvq_system, address, 3, 35)
        assert len(result.segments) >= 2
        result.segments.pop()
        with pytest.raises(CompletenessError):
            verify_result(
                result, lvq_system.headers(), lvq_system.config, address
            )

    def test_missing_resolution_in_range_rejected(
        self, workload, lvq_system, probe_addresses
    ):
        address = probe_addresses["Addr6"]
        active = sorted({h for h, _ in workload.history_of(address)})
        first, last = active[0], active[-1]
        result = answer_query(lvq_system, address, first, last)
        for segment in result.segments:
            if segment.resolutions:
                del segment.resolutions[sorted(segment.resolutions)[0]]
                break
        with pytest.raises(CompletenessError):
            verify_result(
                result, lvq_system.headers(), lvq_system.config, address
            )

    def test_full_range_query_rejects_stubs(
        self, lvq_system, probe_addresses
    ):
        """Stub nodes may never appear in a whole-chain proof."""
        address = probe_addresses["Addr1"]
        narrow = answer_query(lvq_system, address, 1, 8)
        [segment] = narrow.segments
        if segment.multiproof.num_stubs() == 0:
            pytest.skip("no stubs generated for this range")
        forged = QueryResult(
            narrow.kind,
            address,
            narrow.tip_height,
            segments=narrow.segments,
            first_height=1,
            last_height=16,
        )
        with pytest.raises(VerificationError):
            verify_result(
                forged, lvq_system.headers(), lvq_system.config, address
            )


class TestRangeOnPerBlockSystems:
    def test_strawman_range(self, workload, strawman_system, probe_addresses):
        address = probe_addresses["Addr5"]
        result = answer_query(strawman_system, address, 7, 29)
        assert len(result.blocks) == 23
        history = verify_result(
            result, strawman_system.headers(), strawman_system.config, address
        )
        assert [
            (h, tx.txid()) for h, tx in history.transactions
        ] == truth_in_range(workload, address, 7, 29)

    def test_truncated_range_answer_rejected(
        self, strawman_system, probe_addresses
    ):
        address = probe_addresses["Addr5"]
        result = answer_query(strawman_system, address, 7, 29)
        result.blocks.pop()
        with pytest.raises(CompletenessError):
            verify_result(
                result,
                strawman_system.headers(),
                strawman_system.config,
                address,
            )
