"""Unit tests for chain assembly under each system config."""

import pytest

from repro.chain.block import (
    BloomExtension,
    BloomHashExtension,
    BloomHashSmtExtension,
    BmtExtension,
    LvqExtension,
)
from repro.chain.segments import merge_span
from repro.errors import QueryError
from repro.query.builder import build_system
from repro.query.config import SystemConfig, SystemKind, bf_commitment


class TestHeadersPerSystem:
    def test_extension_types(self, any_system):
        expected = {
            SystemKind.STRAWMAN_HEADER_BF: BloomExtension,
            SystemKind.STRAWMAN: BloomHashExtension,
            SystemKind.LVQ_NO_BMT: BloomHashSmtExtension,
            SystemKind.LVQ_NO_SMT: BmtExtension,
            SystemKind.LVQ: LvqExtension,
        }[any_system.config.kind]
        for header in any_system.headers():
            assert isinstance(header.extension, expected)

    def test_linkage_valid(self, any_system):
        headers = any_system.headers()
        for height in range(1, len(headers)):
            assert headers[height].prev_hash == headers[height - 1].block_id()

    def test_merkle_roots_match_bodies(self, any_system):
        for height, tree in enumerate(any_system.merkle_trees):
            assert any_system.headers()[height].merkle_root == tree.root


class TestCommitments:
    def test_bf_hash_commitment(self, strawman_system):
        for height, header in enumerate(strawman_system.headers()):
            assert header.extension.bloom_hash == bf_commitment(
                strawman_system.filters[height]
            )

    def test_smt_roots(self, lvq_system):
        for height, header in enumerate(lvq_system.headers()):
            smt = lvq_system.smts[height]
            assert header.extension.smt_root == smt.root

    def test_bmt_roots_cover_merge_span(self, lvq_system):
        config = lvq_system.config
        for height in range(1, lvq_system.tip_height + 1):
            start, end = merge_span(height, config.segment_len)
            node = lvq_system.forest.node(start, end)
            header = lvq_system.headers()[height]
            assert header.extension.bmt_root == node.hash

    def test_block_filters_contain_block_addresses(self, lvq_system):
        from repro.chain.address import address_item

        for height in (1, 7, 23):
            block = lvq_system.chain.block_at(height)
            bf = lvq_system.filters[height]
            for address in block.unique_addresses():
                assert address_item(address) in bf

    def test_smt_counts_match_blocks(self, lvq_system):
        for height in (1, 5, 17):
            block = lvq_system.chain.block_at(height)
            smt = lvq_system.smts[height]
            for address, count in block.address_counts().items():
                assert smt.count_of(address) == count

    def test_non_smt_systems_have_no_smts(self, strawman_system):
        assert all(smt is None for smt in strawman_system.smts)

    def test_non_bmt_systems_have_no_forest(self, strawman_system):
        assert strawman_system.forest is None


class TestBmtTreeAccessor:
    def test_anchor_tree(self, lvq_system):
        segment_len = lvq_system.config.segment_len
        tree = lvq_system.bmt_tree(segment_len)
        assert (tree.start, tree.end) == (1, segment_len)

    def test_non_bmt_system_raises(self, strawman_system):
        with pytest.raises(QueryError):
            strawman_system.bmt_tree(4)


class TestBuildValidation:
    def test_empty_workload_rejected(self):
        with pytest.raises(QueryError):
            build_system([], SystemConfig.strawman(64))
