"""The bounded query caches, locking primitives, and invalidation rules.

Covers the serving-engine plumbing of :mod:`repro.query.cache`:

* LRU semantics — bound, recency order, counters, ``clear``;
* single-flight coalescing — one computation among concurrent callers,
  exception propagation;
* the readers/writer lock — mutual exclusion, reader reentrancy while a
  writer waits, upgrade rejection;
* the wiring into ``BuiltSystem``/``FullNode`` — the PR-1 memo dicts
  are now bounded, response bytes drop on ``append_block`` while the
  append-stable segment/resolution entries survive.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import QueryError
from repro.node.full_node import FullNode
from repro.node.messages import QueryRequest, QueryResponse
from repro.query.builder import build_system
from repro.query.cache import (
    LRUCache,
    QueryCaches,
    ResponseCache,
    RWLock,
    SingleFlight,
)
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.workload.generator import WorkloadParams, generate_workload


class TestLRUCache:
    def test_get_and_set_roundtrip(self):
        cache = LRUCache(4)
        cache["a"] = 1
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", "fallback") == "fallback"
        assert "a" in cache and "missing" not in cache
        assert len(cache) == 1

    def test_bound_evicts_least_recently_used(self):
        cache = LRUCache(3)
        for key in "abc":
            cache[key] = key.upper()
        cache.get("a")  # refresh 'a'; 'b' becomes the oldest
        cache["d"] = "D"
        assert "b" not in cache
        assert all(key in cache for key in "acd")
        assert cache.stats().evictions == 1

    def test_setitem_refreshes_recency(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"] = 10  # rewrite refreshes 'a'
        cache["c"] = 3
        assert "b" not in cache and cache.get("a") == 10

    def test_counters_survive_clear(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache.get("a")
        cache.get("nope")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_rejects_none_values_and_bad_bounds(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        cache = LRUCache(1)
        with pytest.raises(ValueError):
            cache["k"] = None

    def test_concurrent_mixed_access_keeps_bound(self):
        cache = LRUCache(32)
        errors = []

        def hammer(worker: int):
            try:
                for i in range(300):
                    cache[(worker, i % 40)] = i + 1
                    cache.get((worker, (i * 7) % 40))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32


class TestSingleFlight:
    def test_sequential_calls_each_compute(self):
        flight = SingleFlight()
        calls = []
        assert flight.do("k", lambda: calls.append(1) or "v1") == "v1"
        assert flight.do("k", lambda: calls.append(1) or "v2") == "v2"
        assert len(calls) == 2
        assert flight.flights == 2 and flight.coalesced == 0

    def test_concurrent_identical_keys_compute_once(self):
        flight = SingleFlight()
        calls = []
        barrier = threading.Barrier(6)
        results = []

        def build():
            calls.append(threading.get_ident())
            time.sleep(0.3)  # hold the flight open for the followers
            return "answer"

        def caller():
            barrier.wait()
            results.append(flight.do("hot", build))

        threads = [threading.Thread(target=caller) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == ["answer"] * 6
        assert len(calls) == 1
        assert flight.flights == 1 and flight.coalesced == 5

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight()
        barrier = threading.Barrier(3)
        failures = []

        def build():
            time.sleep(0.2)
            raise QueryError("boom")

        def caller():
            barrier.wait()
            try:
                flight.do("k", build)
            except QueryError as exc:
                failures.append(str(exc))

        threads = [threading.Thread(target=caller) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == ["boom"] * 3
        # The failed flight retired its key: a fresh call recomputes.
        assert flight.do("k", lambda: "recovered") == "recovered"

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        assert flight.do("a", lambda: 1) == 1
        assert flight.do("b", lambda: 2) == 2
        assert flight.coalesced == 0


class TestRWLock:
    def test_reader_reentrancy(self):
        lock = RWLock()
        with lock.read():
            with lock.read():
                pass
        # fully released: a writer can proceed
        with lock.write():
            pass

    def test_write_reentrancy(self):
        lock = RWLock()
        with lock.write():
            with lock.write():
                pass
        with lock.read():
            pass

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        order = []

        def writer():
            with lock.write():
                order.append("write-start")
                time.sleep(0.2)
                order.append("write-end")

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)  # let the writer in
        with lock.read():
            order.append("read")
        thread.join()
        assert order == ["write-start", "write-end", "read"]

    def test_nested_read_does_not_deadlock_behind_waiting_writer(self):
        lock = RWLock()
        lock.acquire_read()
        writer_done = threading.Event()

        def writer():
            with lock.write():
                writer_done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)  # writer is now queued
        # A fresh read acquisition by the same thread must not block on
        # the waiting writer (the batch path nests read acquisitions).
        lock.acquire_read()
        lock.release_read()
        lock.release_read()
        assert writer_done.wait(2.0)
        thread.join()

    def test_upgrade_is_rejected(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError):
                lock.acquire_write()

    def test_release_without_acquire_is_rejected(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_readers_run_concurrently(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # only passes if all 3 readers are inside

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()


class TestResponseCache:
    def test_build_once_then_serve_bytes(self):
        cache = ResponseCache(8)
        builds = []

        def build():
            builds.append(1)
            return b"payload"

        assert cache.get_or_build("k", build) == b"payload"
        assert cache.get_or_build("k", build) == b"payload"
        assert len(builds) == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] >= 1

    def test_invalidate_all_empties(self):
        cache = ResponseCache(8)
        cache.get_or_build("k", lambda: b"x")
        assert len(cache) == 1
        cache.invalidate_all()
        assert len(cache) == 0


@pytest.fixture(scope="module")
def serving_setup():
    workload = generate_workload(
        WorkloadParams(num_blocks=20, txs_per_block=6, seed=11)
    )
    config = SystemConfig.lvq(bf_bytes=192, segment_len=8)
    # Hold back the last three bodies so tests can grow the chain.
    system = build_system(workload.bodies[:17], config)
    return workload, config, system


def _onchain_address(workload, height: int = 3) -> str:
    """An address guaranteed to appear inside the truncated chain."""
    return sorted(workload.bodies[height][0].addresses())[0]


class TestBuiltSystemCacheWiring:
    def test_memos_are_bounded_lrus(self, serving_setup):
        workload, config, _system = serving_setup
        system = build_system(
            workload.bodies[:17], config, caches=QueryCaches(4, 2)
        )
        for address in workload.probe_addresses.values():
            answer_query(system, address)
        assert len(system.resolution_cache) <= 4
        assert len(system.segment_cache) <= 2
        assert system.caches.stats()["segments"]["max_entries"] == 2

    def test_clear_query_caches_still_works(self, serving_setup):
        workload, config, _system = serving_setup
        system = build_system(workload.bodies[:17], config)
        address = _onchain_address(workload)
        answer_query(system, address)
        assert len(system.segment_cache) > 0
        assert len(system.resolution_cache) > 0
        system.clear_query_caches()
        assert len(system.segment_cache) == 0
        assert len(system.resolution_cache) == 0
        # and the caches still fill again afterwards
        answer_query(system, address)
        assert len(system.segment_cache) > 0


class TestAppendInvalidation:
    """Tip-keyed entries drop on append; append-stable entries survive."""

    def _query_bytes(self, node: FullNode, address: str) -> bytes:
        request = QueryRequest(address).serialize()
        return node.handle_query(request)

    def test_response_cache_drops_but_segment_entries_survive(
        self, serving_setup
    ):
        workload, config, _shared = serving_setup
        system = build_system(workload.bodies[:17], config)
        node = FullNode(system)
        address = _onchain_address(workload)

        first = self._query_bytes(node, address)
        again = self._query_bytes(node, address)
        assert first == again
        assert node.response_cache.stats()["hits"] == 1
        assert len(node.response_cache) == 1
        segment_keys_before = set(system.segment_cache.keys())
        resolutions_before = len(system.resolution_cache)
        assert segment_keys_before and resolutions_before

        system.append_block(workload.bodies[17])

        # Tip-keyed response bytes are gone; append-stable memos are not.
        assert len(node.response_cache) == 0
        assert set(system.segment_cache.keys()) == segment_keys_before
        assert len(system.resolution_cache) == resolutions_before

        # A fresh query answers at the new tip and re-fills the cache.
        after = self._query_bytes(node, address)
        result = QueryResponse.deserialize(after, config).result
        assert result.tip_height == 17
        assert len(node.response_cache) == 1

    def test_clear_query_caches_also_drops_response_bytes(
        self, serving_setup
    ):
        workload, config, _shared = serving_setup
        system = build_system(workload.bodies[:17], config)
        node = FullNode(system)
        self._query_bytes(node, workload.probe_addresses["Addr6"])
        assert len(node.response_cache) == 1
        system.clear_query_caches()
        assert len(node.response_cache) == 0

    def test_stale_tip_response_is_never_served(self, serving_setup):
        workload, config, _shared = serving_setup
        system = build_system(workload.bodies[:17], config)
        node = FullNode(system)
        address = workload.probe_addresses["Addr4"]
        before = QueryResponse.deserialize(
            self._query_bytes(node, address), config
        ).result
        system.append_block(workload.bodies[17])
        after = QueryResponse.deserialize(
            self._query_bytes(node, address), config
        ).result
        assert before.tip_height == 16
        assert after.tip_height == 17
