"""Server-side rollback and reorg: byte-identity and cache hygiene.

The contract under test: after any sequence of appends, rollbacks, and
reorgs, a :class:`BuiltSystem` must be indistinguishable — headers and
full verifiable answers, byte for byte — from a system freshly built
over the equivalent body list.  Anything less means the incremental
index maintenance (BMT forest, inverted index, SMT/filter lists, caches)
leaks state across the fork point.
"""

import threading

import pytest

from repro.errors import ChainError
from repro.query.builder import build_system
from repro.query.config import SystemConfig, SystemKind
from repro.query.prover import answer_query
from repro.query.verifier import verify_result
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile


def _config_for(kind: SystemKind) -> SystemConfig:
    if kind is SystemKind.STRAWMAN:
        return SystemConfig.strawman(bf_bytes=96)
    if kind is SystemKind.STRAWMAN_HEADER_BF:
        return SystemConfig.strawman_header_bf(bf_bytes=96)
    if kind is SystemKind.LVQ_NO_BMT:
        return SystemConfig.lvq_no_bmt(bf_bytes=96)
    if kind is SystemKind.LVQ_NO_SMT:
        return SystemConfig.lvq_no_smt(bf_bytes=192, segment_len=4)
    return SystemConfig.lvq(bf_bytes=192, segment_len=4)


@pytest.fixture(scope="module")
def forks():
    main = generate_workload(
        WorkloadParams(
            num_blocks=14,
            txs_per_block=5,
            seed=31,
            probes=[ProbeProfile("P", 8, 5)],
        )
    )
    alt = generate_workload(
        WorkloadParams(
            num_blocks=18,
            txs_per_block=5,
            seed=32,
            probes=[ProbeProfile("P", 8, 5)],
        )
    )
    return main, alt


def _assert_equivalent(system, bodies, config, probes):
    fresh = build_system(bodies, config)
    assert [h.serialize() for h in system.headers()] == [
        h.serialize() for h in fresh.headers()
    ]
    for address in probes:
        assert answer_query(system, address).serialize(config) == answer_query(
            fresh, address
        ).serialize(config)


@pytest.mark.parametrize("kind", list(SystemKind), ids=lambda k: k.value)
class TestByteIdentity:
    def test_rollback_matches_fresh_build(self, forks, kind):
        main, _alt = forks
        config = _config_for(kind)
        system = build_system(main.bodies, config)
        removed = system.rollback_to(9)
        assert removed == 5
        _assert_equivalent(
            system, main.bodies[:10], config, main.probe_addresses.values()
        )

    def test_reorg_matches_fresh_build(self, forks, kind):
        main, alt = forks
        config = _config_for(kind)
        system = build_system(main.bodies, config)
        replaced, appended = system.reorg(8, alt.bodies[9:14])
        assert (replaced, appended) == (6, 5)
        probes = set(main.probe_addresses.values()) | set(
            alt.probe_addresses.values()
        )
        _assert_equivalent(
            system, main.bodies[:9] + alt.bodies[9:14], config, probes
        )

    def test_rollback_then_regrow(self, forks, kind):
        main, _alt = forks
        config = _config_for(kind)
        system = build_system(main.bodies, config)
        system.rollback_to(6)
        for body in main.bodies[7:]:
            system.append_block(body)
        _assert_equivalent(
            system, main.bodies, config, main.probe_addresses.values()
        )


class TestRollbackSemantics:
    def test_rollback_to_tip_is_noop(self, forks):
        main, _alt = forks
        config = _config_for(SystemKind.LVQ)
        system = build_system(main.bodies, config)
        assert system.rollback_to(system.tip_height) == 0
        assert system.tip_height == len(main.bodies) - 1

    def test_rollback_below_genesis_rejected(self, forks):
        main, _alt = forks
        system = build_system(main.bodies, _config_for(SystemKind.LVQ))
        with pytest.raises(ChainError):
            system.rollback_to(-1)

    def test_rollback_above_tip_rejected(self, forks):
        main, _alt = forks
        system = build_system(main.bodies, _config_for(SystemKind.LVQ))
        with pytest.raises(ChainError):
            system.rollback_to(system.tip_height + 1)

    def test_index_rollback_prunes_postings(self, forks):
        main, _alt = forks
        system = build_system(main.bodies, _config_for(SystemKind.LVQ))
        index = system.address_index
        before = index.num_postings
        system.rollback_to(7)
        assert index.indexed_height == 7
        assert index.num_postings < before
        fresh = build_system(
            main.bodies[:8], _config_for(SystemKind.LVQ)
        ).address_index
        assert index.num_postings == fresh.num_postings
        assert index.num_addresses == fresh.num_addresses
        for address in fresh.addresses():
            assert index.occurrences(address) == fresh.occurrences(address)

    def test_forest_rollback_prunes_nodes(self, forks):
        main, _alt = forks
        config = _config_for(SystemKind.LVQ)
        system = build_system(main.bodies, config)
        system.rollback_to(9)
        fresh = build_system(main.bodies[:10], config)
        assert system.forest.max_height == fresh.forest.max_height

    def test_reorg_listener_fires_with_fork_height(self, forks):
        main, alt = forks
        system = build_system(main.bodies, _config_for(SystemKind.LVQ))
        seen = []
        system.add_reorg_listener(seen.append)
        system.rollback_to(10)
        system.reorg(8, alt.bodies[9:12])
        assert seen == [10, 8]


class TestCacheInvalidation:
    def test_caches_evict_above_fork(self, forks):
        main, _alt = forks
        config = _config_for(SystemKind.LVQ)
        system = build_system(main.bodies, config)
        address = main.probe_addresses["P"]
        answer_query(system, address)  # warm resolution/segment caches
        stale_res = [
            key for key in system.caches.resolutions.keys() if key[1] > 9
        ]
        system.rollback_to(9)
        for key in stale_res:
            assert key not in system.caches.resolutions
        for key in system.caches.resolutions.keys():
            assert key[1] <= 9
        for key in system.caches.segments.keys():
            assert key[3] <= 9

    def test_post_rollback_answers_verify(self, forks):
        main, _alt = forks
        config = _config_for(SystemKind.LVQ)
        system = build_system(main.bodies, config)
        address = main.probe_addresses["P"]
        answer_query(system, address)
        system.rollback_to(9)
        result = answer_query(system, address)
        history = verify_result(result, system.headers(), config, address)
        truth = [
            (height, tx.txid())
            for height, transactions in enumerate(main.bodies[:10])
            for tx in transactions
            if tx.involves(address)
        ]
        assert [
            (height, tx.txid()) for height, tx in history.transactions
        ] == truth


class TestConcurrentReorg:
    def test_queries_never_see_torn_state(self, forks):
        """Readers hammering the system during reorgs must always get an
        answer that verifies against *some* consistent tip's headers."""
        main, alt = forks
        config = _config_for(SystemKind.LVQ)
        system = build_system(main.bodies, config)
        address = main.probe_addresses["P"]
        chains = {}
        with system.lock.read():
            chains[system.tip_height] = [
                h.serialize() for h in system.headers()
            ]
        failures = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    with system.lock.read():
                        headers = [h.serialize() for h in system.headers()]
                        result = answer_query(system, address)
                    from repro.chain.block import BlockHeader
                    from repro.crypto.encoding import ByteReader

                    parsed = []
                    for raw in headers:
                        reader_ = ByteReader(raw)
                        parsed.append(
                            BlockHeader.deserialize(
                                reader_,
                                config.header_extension_kind,
                                config.header_bloom_bytes,
                            )
                        )
                    verify_result(result, parsed, config, address)
                except Exception as exc:  # noqa: BLE001 - collect all
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(3):
                system.reorg(8, alt.bodies[9:14])
                system.reorg(8, main.bodies[9:])
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures[:1]
