"""Parallel ``build_system`` must be byte-identical to the sequential one.

The build splits into order-independent per-block indexing (pooled) and
a sequential ``prev_hash``/forest stitch; these tests pin the contract
that no output byte may depend on how phase 1 was scheduled — across
every system kind, both executors, degenerate chunkings, and chains
later grown block-by-block.
"""

from __future__ import annotations

import pytest

from repro.query.builder import (
    BuiltSystem,
    build_system,
    build_system_parallel,
)
from repro.query.config import SystemConfig, SystemKind
from repro.query.prover import answer_query
from repro.workload.generator import WorkloadParams, generate_workload

NUM_BLOCKS = 12
SEGMENT_LEN = 4


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadParams(num_blocks=NUM_BLOCKS, txs_per_block=6, seed=77)
    )


def _config_for(kind: SystemKind) -> SystemConfig:
    if kind is SystemKind.STRAWMAN:
        return SystemConfig.strawman(bf_bytes=96)
    if kind is SystemKind.STRAWMAN_HEADER_BF:
        return SystemConfig.strawman_header_bf(bf_bytes=96)
    if kind is SystemKind.LVQ_NO_BMT:
        return SystemConfig.lvq_no_bmt(bf_bytes=96)
    if kind is SystemKind.LVQ_NO_SMT:
        return SystemConfig.lvq_no_smt(bf_bytes=192, segment_len=SEGMENT_LEN)
    return SystemConfig.lvq(bf_bytes=192, segment_len=SEGMENT_LEN)


def assert_systems_identical(
    sequential: BuiltSystem, parallel: BuiltSystem, workload
) -> None:
    """Every committed byte and every served answer must match."""
    seq_headers = sequential.headers()
    par_headers = parallel.headers()
    assert len(seq_headers) == len(par_headers)
    for height, (seq_header, par_header) in enumerate(
        zip(seq_headers, par_headers)
    ):
        assert seq_header.serialize() == par_header.serialize(), (
            f"header mismatch at height {height}"
        )
    for height, (seq_bf, par_bf) in enumerate(
        zip(sequential.filters, parallel.filters)
    ):
        assert seq_bf.to_bytes() == par_bf.to_bytes(), (
            f"filter mismatch at height {height}"
        )
    for height, (seq_smt, par_smt) in enumerate(
        zip(sequential.smts, parallel.smts)
    ):
        assert (seq_smt is None) == (par_smt is None)
        if seq_smt is not None:
            assert seq_smt.root == par_smt.root, (
                f"SMT root mismatch at height {height}"
            )
    config = sequential.config
    for address in workload.probe_addresses.values():
        seq_answer = answer_query(sequential, address).serialize(config)
        par_answer = answer_query(parallel, address).serialize(config)
        assert seq_answer == par_answer, f"answer mismatch for {address}"


@pytest.mark.parametrize("kind", list(SystemKind), ids=lambda k: k.value)
def test_thread_pool_build_is_byte_identical(kind, workload):
    config = _config_for(kind)
    sequential = build_system(workload.bodies, config)
    parallel = build_system(workload.bodies, config, workers=3)
    assert_systems_identical(sequential, parallel, workload)


def test_process_pool_build_is_byte_identical(workload):
    config = _config_for(SystemKind.LVQ)
    sequential = build_system(workload.bodies, config)
    parallel = build_system(
        workload.bodies, config, workers=2, executor="process"
    )
    assert_systems_identical(sequential, parallel, workload)


@pytest.mark.parametrize("chunk_size", [1, 5, NUM_BLOCKS + 10])
def test_degenerate_chunkings(chunk_size, workload):
    config = _config_for(SystemKind.LVQ)
    sequential = build_system(workload.bodies, config)
    parallel = build_system(
        workload.bodies, config, workers=4, chunk_size=chunk_size
    )
    assert_systems_identical(sequential, parallel, workload)


def test_more_workers_than_blocks(workload):
    config = _config_for(SystemKind.LVQ_NO_SMT)
    sequential = build_system(workload.bodies, config)
    parallel = build_system(workload.bodies, config, workers=32)
    assert_systems_identical(sequential, parallel, workload)


def test_workers_one_means_sequential(workload):
    config = _config_for(SystemKind.LVQ)
    baseline = build_system(workload.bodies, config)
    explicit = build_system(workload.bodies, config, workers=1)
    assert_systems_identical(baseline, explicit, workload)


def test_build_system_parallel_defaults(workload):
    config = _config_for(SystemKind.LVQ)
    sequential = build_system(workload.bodies, config)
    parallel = build_system_parallel(workload.bodies, config)
    assert_systems_identical(sequential, parallel, workload)


def test_unknown_executor_rejected(workload):
    from repro.errors import QueryError

    config = _config_for(SystemKind.LVQ)
    with pytest.raises(QueryError):
        build_system(workload.bodies, config, workers=2, executor="fiber")


def test_append_after_parallel_build_matches_full_sequential(workload):
    """A parallel prefix grown block-by-block equals one sequential build."""
    config = _config_for(SystemKind.LVQ)
    grown = build_system(workload.bodies[:9], config, workers=3)
    for body in workload.bodies[9:]:
        grown.append_block(body)
    full = build_system(workload.bodies, config)
    assert_systems_identical(full, grown, workload)
