"""Unit tests for honest proof generation."""

import pytest

from repro.chain.segments import covering_spans
from repro.errors import QueryError
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.fragments import (
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
)
from repro.query.prover import answer_query
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile


class TestSegmentAnswers:
    def test_segments_match_covering_spans(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr4"])
        expected = covering_spans(
            lvq_system.tip_height, lvq_system.config.segment_len
        )
        assert [(s.anchor, s.start, s.end) for s in result.segments] == expected

    def test_empty_address_has_no_resolutions_without_fpm(
        self, lvq_system, probe_addresses
    ):
        result = answer_query(lvq_system, probe_addresses["Addr1"])
        # Addr1 never appears; resolutions only exist for (rare) FPMs,
        # and each must be an SMT inexistence pair, never an existence.
        for segment in result.segments:
            for resolution in segment.resolutions.values():
                assert isinstance(resolution, FpmResolution)

    def test_active_address_resolutions_cover_every_block(
        self, workload, lvq_system, probe_addresses
    ):
        address = probe_addresses["Addr5"]
        truth_heights = {h for h, _ in workload.history_of(address)}
        result = answer_query(lvq_system, address)
        resolved = set()
        for segment in result.segments:
            for height, resolution in segment.resolutions.items():
                if isinstance(resolution, ExistenceResolution):
                    resolved.add(height)
        assert resolved == truth_heights

    def test_existence_entries_match_truth(
        self, workload, lvq_system, probe_addresses
    ):
        address = probe_addresses["Addr3"]
        truth = workload.history_of(address)
        result = answer_query(lvq_system, address)
        shipped = []
        for segment in result.segments:
            for height, resolution in sorted(segment.resolutions.items()):
                if isinstance(resolution, ExistenceResolution):
                    assert resolution.smt_branch is not None
                    assert resolution.smt_branch.leaf.count == len(
                        resolution.entries
                    )
                    shipped.extend(
                        (height, e.transaction.txid())
                        for e in resolution.entries
                    )
        assert sorted(shipped) == sorted(
            (h, tx.txid()) for h, tx in truth
        )

    def test_no_smt_system_ships_integral_blocks(
        self, lvq_no_smt_system, probe_addresses
    ):
        result = answer_query(lvq_no_smt_system, probe_addresses["Addr6"])
        kinds = {
            type(resolution)
            for segment in result.segments
            for resolution in segment.resolutions.values()
        }
        assert kinds == {IntegralBlockResolution}


class TestPerBlockAnswers:
    def test_one_answer_per_block(self, strawman_system, probe_addresses):
        result = answer_query(strawman_system, probe_addresses["Addr2"])
        assert len(result.blocks) == strawman_system.tip_height

    def test_strawman_ships_filters(self, strawman_system, probe_addresses):
        result = answer_query(strawman_system, probe_addresses["Addr1"])
        assert all(answer.bf is not None for answer in result.blocks)

    def test_header_bf_variant_ships_no_filters(self, workload, probe_addresses):
        system = build_system(
            workload.bodies, SystemConfig.strawman_header_bf(bf_bytes=96)
        )
        result = answer_query(system, probe_addresses["Addr1"])
        assert all(answer.bf is None for answer in result.blocks)

    def test_strawman_existence_has_no_smt_branch(
        self, strawman_system, probe_addresses
    ):
        result = answer_query(strawman_system, probe_addresses["Addr6"])
        existences = [
            a.resolution
            for a in result.blocks
            if isinstance(a.resolution, ExistenceResolution)
        ]
        assert existences
        assert all(r.smt_branch is None for r in existences)

    def test_lvq_no_bmt_existence_has_smt_branch(
        self, lvq_no_bmt_system, probe_addresses
    ):
        result = answer_query(lvq_no_bmt_system, probe_addresses["Addr6"])
        existences = [
            a.resolution
            for a in result.blocks
            if isinstance(a.resolution, ExistenceResolution)
        ]
        assert existences
        assert all(r.smt_branch is not None for r in existences)

    def test_inactive_blocks_answered_empty(
        self, workload, strawman_system, probe_addresses
    ):
        address = probe_addresses["Addr2"]
        truth_heights = {h for h, _ in workload.history_of(address)}
        result = answer_query(strawman_system, address)
        for offset, answer in enumerate(result.blocks):
            height = offset + 1
            if height in truth_heights:
                assert answer.resolution is not None


class TestForcedFpm:
    def test_tiny_filter_forces_smt_inexistence(self):
        """A deliberately saturated BF makes the FPM path fire."""
        workload = generate_workload(
            WorkloadParams(
                num_blocks=8,
                txs_per_block=12,
                seed=1,  # seed chosen so the probe's positions collide
                probes=[ProbeProfile("Ghost", 0, 0)],
            )
        )
        system = build_system(
            workload.bodies,
            SystemConfig.lvq(bf_bytes=8, segment_len=8, num_hashes=2),
        )
        result = answer_query(system, workload.probe_addresses["Ghost"])
        resolutions = [
            resolution
            for segment in result.segments
            for resolution in segment.resolutions.values()
        ]
        assert resolutions, "8-byte filters over 12-tx blocks must saturate"
        assert all(isinstance(r, FpmResolution) for r in resolutions)


class TestValidation:
    def test_genesis_only_chain_rejected(self, workload):
        system = build_system(
            workload.bodies[:1], SystemConfig.strawman(bf_bytes=96)
        )
        with pytest.raises(QueryError):
            answer_query(system, "1Whatever")
