"""Property tests pinning AddressIndex to brute-force chain scans."""

import pytest

from repro.errors import ChainError
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.index import AddressIndex
from repro.workload.generator import WorkloadParams, generate_workload


def _brute_force_postings(bodies, address):
    return [
        (height, tx_index)
        for height, transactions in enumerate(bodies)
        for tx_index, transaction in enumerate(transactions)
        if transaction.involves(address)
    ]


def _all_addresses(bodies):
    seen = set()
    for transactions in bodies:
        for transaction in transactions:
            seen.update(transaction.addresses())
    return seen


@pytest.mark.parametrize("seed", [7, 99, 2020])
def test_index_agrees_with_involves_scan(seed):
    """Every address's postings equal the brute-force involves() scan."""
    workload = generate_workload(
        WorkloadParams(num_blocks=20, txs_per_block=6, seed=seed)
    )
    index = AddressIndex()
    for height, transactions in enumerate(workload.bodies):
        index.add_block(height, transactions)

    addresses = _all_addresses(workload.bodies)
    assert addresses, "workload produced no addresses"
    for address in addresses:
        truth = _brute_force_postings(workload.bodies, address)
        assert index.occurrences(address) == truth
        truth_heights = sorted({height for height, _ in truth})
        assert index.heights(address) == truth_heights
        for height in truth_heights:
            assert index.tx_indices(address, height) == [
                tx_index for h, tx_index in truth if h == height
            ]

    # An address the chain never saw.
    assert index.occurrences("unseen-address") == []
    assert index.tx_indices("unseen-address", 3) == []
    assert not index.touches_range("unseen-address", 0, 20)


def test_counts_match_block_smt_semantics():
    """count_at equals Block.address_counts — the SMT leaf content."""
    workload = generate_workload(
        WorkloadParams(num_blocks=16, txs_per_block=8, seed=5)
    )
    system = build_system(
        workload.bodies, SystemConfig.lvq(bf_bytes=96, segment_len=8)
    )
    index = system.address_index
    assert index is not None
    for block in system.chain:
        truth = block.address_counts()
        for address, count in truth.items():
            assert index.count_at(address, block.height) == count
            assert index.appearance_counts(address)[block.height] == count


def test_touches_range_bisection():
    workload = generate_workload(
        WorkloadParams(num_blocks=24, txs_per_block=5, seed=11)
    )
    index = AddressIndex()
    for height, transactions in enumerate(workload.bodies):
        index.add_block(height, transactions)
    for address in list(_all_addresses(workload.bodies))[:50]:
        heights = set(index.heights(address))
        for first, last in [(1, 24), (5, 9), (20, 24), (1, 1), (12, 12)]:
            expected = any(first <= h <= last for h in heights)
            assert index.touches_range(address, first, last) == expected


def test_add_block_enforces_height_order():
    index = AddressIndex()
    workload = generate_workload(WorkloadParams(num_blocks=2, seed=1))
    index.add_block(0, workload.bodies[0])
    with pytest.raises(ChainError):
        index.add_block(2, workload.bodies[1])
    with pytest.raises(ChainError):
        index.add_block(0, workload.bodies[0])


def test_forced_short_id_collisions_stay_exact(monkeypatch):
    """With every address colliding on one short id, lookups must still
    be exact — the intern table pins one owner, everyone else overflows."""
    import repro.query.index as index_module

    monkeypatch.setattr(index_module, "short_id", lambda address: 42)
    workload = generate_workload(
        WorkloadParams(num_blocks=20, txs_per_block=6, seed=7)
    )
    index = AddressIndex()
    for height, transactions in enumerate(workload.bodies):
        index.add_block(height, transactions)

    addresses = _all_addresses(workload.bodies)
    for address in addresses:
        assert index.occurrences(address) == _brute_force_postings(
            workload.bodies, address
        )
        assert address in index
    assert index.num_addresses == len(addresses)
    assert set(index.addresses()) == addresses
    assert index.occurrences("never-seen") == []
    assert "never-seen" not in index


def test_collision_rollback_preserves_ownership(monkeypatch):
    """Rolling the owner's postings to zero must not let a collision
    loser capture the short id on re-insert."""
    import repro.query.index as index_module

    monkeypatch.setattr(index_module, "short_id", lambda address: 7)
    workload = generate_workload(
        WorkloadParams(num_blocks=12, txs_per_block=6, seed=3)
    )
    index = AddressIndex()
    for height, transactions in enumerate(workload.bodies):
        index.add_block(height, transactions)
    # Roll everything out, then replay: postings must come back exact.
    index.rollback_to(-1)
    assert index.num_postings == 0
    for height, transactions in enumerate(workload.bodies):
        index.add_block(height, transactions)
    for address in _all_addresses(workload.bodies):
        assert index.occurrences(address) == _brute_force_postings(
            workload.bodies, address
        )


def test_partial_rollback_under_collisions(monkeypatch):
    import repro.query.index as index_module

    monkeypatch.setattr(index_module, "short_id", lambda address: 1)
    workload = generate_workload(
        WorkloadParams(num_blocks=16, txs_per_block=6, seed=9)
    )
    full = AddressIndex()
    for height, transactions in enumerate(workload.bodies):
        full.add_block(height, transactions)
    full.rollback_to(7)
    truth = AddressIndex()
    for height, transactions in enumerate(workload.bodies[:8]):
        truth.add_block(height, transactions)
    assert full.num_postings == truth.num_postings
    for address in _all_addresses(workload.bodies):
        assert full.occurrences(address) == truth.occurrences(address)


def test_tx_index_field_overflow_is_typed():
    from repro.query.index import _TX_MASK, _pack

    assert _pack(3, _TX_MASK) == (3 << 20) | _TX_MASK
    with pytest.raises(ChainError):
        _pack(0, _TX_MASK + 1)


def test_incremental_append_matches_bulk_build(workload):
    """append_block keeps the index identical to a one-shot build."""
    config = SystemConfig.lvq(bf_bytes=96, segment_len=8)
    bulk = build_system(workload.bodies, config)
    grown = build_system(workload.bodies[:-4], config)
    for transactions in workload.bodies[-4:]:
        grown.append_block(transactions)
    assert bulk.address_index is not None and grown.address_index is not None
    assert bulk.address_index.num_postings == grown.address_index.num_postings
    for address in list(_all_addresses(workload.bodies))[:100]:
        assert bulk.address_index.occurrences(
            address
        ) == grown.address_index.occurrences(address)
