"""Unit tests for QueryResult serialization and size accounting."""

import pytest

from repro.errors import EncodingError, ProofError
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.query.result import QueryResult
from repro.query.verifier import verify_result


class TestSerializationRoundtrip:
    def test_every_system_every_probe(self, any_system, probe_addresses):
        config = any_system.config
        headers = any_system.headers()
        for address in probe_addresses.values():
            result = answer_query(any_system, address)
            payload = result.serialize(config)
            restored = QueryResult.deserialize(payload, config)
            assert restored.serialize(config) == payload
            # The deserialized result must verify exactly like the original.
            verify_result(restored, headers, config, address)

    def test_trailing_garbage_rejected(self, lvq_system, probe_addresses):
        config = lvq_system.config
        payload = answer_query(
            lvq_system, probe_addresses["Addr1"]
        ).serialize(config)
        with pytest.raises(EncodingError):
            QueryResult.deserialize(payload + b"\x00", config)

    def test_truncation_rejected(self, lvq_system, probe_addresses):
        config = lvq_system.config
        payload = answer_query(
            lvq_system, probe_addresses["Addr6"]
        ).serialize(config)
        with pytest.raises(EncodingError):
            QueryResult.deserialize(payload[:-2], config)

    def test_wrong_config_kind_rejected(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr1"])
        with pytest.raises(ProofError):
            result.serialize(SystemConfig.strawman(bf_bytes=96))


class TestConstruction:
    def test_needs_exactly_one_payload(self, lvq_system, probe_addresses):
        from repro.query.config import SystemKind

        with pytest.raises(ProofError):
            QueryResult(SystemKind.LVQ, "1x", 4, segments=None, blocks=None)
        with pytest.raises(ProofError):
            QueryResult(SystemKind.LVQ, "1x", 4, segments=[], blocks=[])

    def test_endpoints_only_on_segment_results(
        self, strawman_system, probe_addresses
    ):
        result = answer_query(strawman_system, probe_addresses["Addr1"])
        with pytest.raises(ProofError):
            result.num_endpoints()


class TestSizeAccounting:
    def test_size_is_len_serialize(self, any_system, probe_addresses):
        config = any_system.config
        for address in probe_addresses.values():
            result = answer_query(any_system, address)
            assert result.size_bytes(config) == len(result.serialize(config))

    def test_breakdown_sums_to_total(self, any_system, probe_addresses):
        config = any_system.config
        for address in probe_addresses.values():
            result = answer_query(any_system, address)
            sizes = result.breakdown(config)
            parts = (
                sizes.bf_bytes
                + sizes.bmt_bytes
                + sizes.smt_bytes
                + sizes.mt_bytes
                + sizes.tx_bytes
                + sizes.ib_bytes
                + sizes.framing_bytes
            )
            assert parts == sizes.total_bytes
            assert sizes.framing_bytes >= 0

    def test_lvq_dominated_by_bmt_for_empty_address(
        self, lvq_system, probe_addresses
    ):
        """Fig 14's claim: BMT branches are the bulk of the result."""
        result = answer_query(lvq_system, probe_addresses["Addr1"])
        sizes = result.breakdown(lvq_system.config)
        assert sizes.bmt_ratio() > 0.8

    def test_strawman_dominated_by_filters_for_empty_address(
        self, strawman_system, probe_addresses
    ):
        result = answer_query(strawman_system, probe_addresses["Addr1"])
        sizes = result.breakdown(strawman_system.config)
        assert sizes.bf_bytes >= 0.9 * sizes.total_bytes

    def test_strawman_filter_bytes_exact(self, strawman_system, probe_addresses):
        """Per-block filters cost exactly blocks × bf_bytes."""
        result = answer_query(strawman_system, probe_addresses["Addr1"])
        sizes = result.breakdown(strawman_system.config)
        assert sizes.bf_bytes == (
            strawman_system.tip_height * strawman_system.config.bf_bytes
        )

    def test_busy_address_has_tx_and_mt_bytes(
        self, lvq_system, probe_addresses
    ):
        result = answer_query(lvq_system, probe_addresses["Addr6"])
        sizes = result.breakdown(lvq_system.config)
        assert sizes.tx_bytes > 0
        assert sizes.mt_bytes > 0
        assert sizes.smt_bytes > 0

    def test_bmt_ratio_zero_for_non_bmt(self, strawman_system, probe_addresses):
        result = answer_query(strawman_system, probe_addresses["Addr1"])
        assert result.breakdown(strawman_system.config).bmt_ratio() == 0.0

    def test_as_dict_keys(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr1"])
        sizes = result.breakdown(lvq_system.config).as_dict()
        assert set(sizes) == {
            "bf", "bmt", "smt", "mt", "tx", "ib", "framing", "total",
            "aggregated", "compressed",
        }

    def test_wire_sizes_populated(self, lvq_system, probe_addresses):
        """The §8.1/§8.3 wire sizes ride along in every breakdown."""
        result = answer_query(lvq_system, probe_addresses["Addr6"])
        sizes = result.breakdown(lvq_system.config)
        assert 0 < sizes.compressed_bytes <= sizes.aggregated_bytes
        assert sizes.aggregated_bytes < sizes.total_bytes * 1.02
