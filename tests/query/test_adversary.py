"""Security tests (§VI): every adversarial full node is caught.

The one documented exception is ``omit_one_transaction`` against the plain
strawman — the paper's Challenge 3 — which this suite asserts *explicitly*
as an accepted-but-wrong outcome, demonstrating why LVQ needs the SMT.
"""

import pytest

from repro.errors import VerificationError
from repro.node.light_node import LightNode
from repro.query.adversary import ALL_ATTACKS, MaliciousFullNode
from repro.query.config import SystemKind


def _run_attack(system, attack, address):
    """Returns (attack_applied, verification_raised)."""
    node = MaliciousFullNode(system, attack)
    light = LightNode(system.headers(), system.config)
    try:
        light.query_history(node, address)
        raised = False
    except VerificationError:
        raised = True
    return node.last_attack_applied, raised


@pytest.mark.parametrize("attack_name", sorted(ALL_ATTACKS))
def test_lvq_rejects_every_applied_attack(
    attack_name, lvq_system, probe_addresses
):
    attack = ALL_ATTACKS[attack_name]
    applied_somewhere = False
    for address in probe_addresses.values():
        applied, raised = _run_attack(lvq_system, attack, address)
        if applied:
            applied_somewhere = True
            assert raised, f"{attack_name} accepted on LVQ for {address}"
    if not applied_somewhere:
        pytest.skip(f"{attack_name} found nothing to attack on LVQ")


@pytest.mark.parametrize("attack_name", sorted(ALL_ATTACKS))
def test_lvq_no_smt_rejects_every_applied_attack(
    attack_name, lvq_no_smt_system, probe_addresses
):
    attack = ALL_ATTACKS[attack_name]
    applied_somewhere = False
    for address in probe_addresses.values():
        applied, raised = _run_attack(lvq_no_smt_system, attack, address)
        if applied:
            applied_somewhere = True
            assert raised, f"{attack_name} accepted on LVQ-no-SMT"
    if not applied_somewhere:
        pytest.skip(f"{attack_name} found nothing to attack on LVQ-no-SMT")


@pytest.mark.parametrize("attack_name", sorted(ALL_ATTACKS))
def test_lvq_no_bmt_rejects_every_applied_attack(
    attack_name, lvq_no_bmt_system, probe_addresses
):
    attack = ALL_ATTACKS[attack_name]
    applied_somewhere = False
    for address in probe_addresses.values():
        applied, raised = _run_attack(lvq_no_bmt_system, attack, address)
        if applied:
            applied_somewhere = True
            assert raised, f"{attack_name} accepted on LVQ-no-BMT"
    if not applied_somewhere:
        pytest.skip(f"{attack_name} found nothing to attack on LVQ-no-BMT")


class TestStrawmanChallenge3:
    """The paper's motivating gap, reproduced as a passing test."""

    def test_omission_goes_undetected(self, strawman_system, probe_addresses):
        attack = ALL_ATTACKS["omit_one_transaction"]
        caught_nothing = False
        for address in probe_addresses.values():
            applied, raised = _run_attack(strawman_system, attack, address)
            if applied and not raised:
                caught_nothing = True
        assert caught_nothing, (
            "expected the strawman to accept at least one omission — "
            "Challenge 3 says it cannot count appearances"
        )

    def test_all_other_attacks_still_caught(
        self, strawman_system, probe_addresses
    ):
        for attack_name, attack in ALL_ATTACKS.items():
            if attack_name == "omit_one_transaction":
                continue
            for address in probe_addresses.values():
                applied, raised = _run_attack(strawman_system, attack, address)
                if applied:
                    assert raised, (
                        f"{attack_name} accepted on strawman for {address}"
                    )

    def test_lvq_closes_the_gap(self, lvq_system, probe_addresses):
        """The same omission attack never succeeds against LVQ."""
        attack = ALL_ATTACKS["omit_one_transaction"]
        applied_somewhere = False
        for address in probe_addresses.values():
            applied, raised = _run_attack(lvq_system, attack, address)
            if applied:
                applied_somewhere = True
                assert raised
        assert applied_somewhere, "expected a multi-tx block to attack"


class TestAttackBookkeeping:
    def test_attack_applied_flag(self, lvq_system, probe_addresses):
        # Attacking the empty address's result with a tx-level attack is a
        # no-op and must be reported as such.
        node = MaliciousFullNode(
            lvq_system, ALL_ATTACKS["forge_transaction_value"]
        )
        light = LightNode(lvq_system.headers(), lvq_system.config)
        light.query_history(node, probe_addresses["Addr1"])
        assert node.last_attack_applied is False

    def test_identity_attack_accepted(self, lvq_system, probe_addresses):
        node = MaliciousFullNode(lvq_system, lambda result: result)
        light = LightNode(lvq_system.headers(), lvq_system.config)
        history = light.query_history(node, probe_addresses["Addr5"])
        assert node.last_attack_applied is False
        assert history.transactions
