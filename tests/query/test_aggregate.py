"""The §8.1 aggregated batch encoding: round-trip oracle + adversaries.

The invariant: for every system kind the aggregated bytes decode to a
batch whose plain serialization is byte-identical to the original (the
PR 5 encoding is the oracle), and *any* mangling of the aggregated
frame — a tampered blob table, a dangling back-reference, truncation,
trailing garbage, arbitrary bit flips — surfaces as a typed
:class:`ReproError`, never a crash and never a silently different batch.
"""

import pytest

from repro.errors import EncodingError, ProofError, ReproError
from repro.query.aggregate import (
    batch_of_result,
    decode_aggregated_batch,
    encode_aggregated_batch,
)
from repro.query.batch import answer_batch_query, verify_batch_result
from repro.query.prover import answer_query


def _probe_batch(system, probe_addresses):
    addresses = list(probe_addresses.values())
    return addresses, answer_batch_query(system, addresses)


def test_round_trip_is_byte_identical(any_system, probe_addresses):
    """decode(encode(batch)) reserializes to the oracle bytes exactly."""
    config = any_system.config
    _, batch = _probe_batch(any_system, probe_addresses)
    plain = batch.serialize(config)
    aggregated = encode_aggregated_batch(batch, config)
    decoded = decode_aggregated_batch(aggregated, config)
    assert decoded.serialize(config) == plain


def test_decoded_batch_verifies_like_the_oracle(any_system, probe_addresses):
    """Verification accepts the decoded batch with identical histories."""
    config = any_system.config
    addresses, batch = _probe_batch(any_system, probe_addresses)
    aggregated = encode_aggregated_batch(batch, config)
    decoded = decode_aggregated_batch(aggregated, config)
    expected_range = (1, any_system.tip_height)
    headers = any_system.headers()
    plain_histories = verify_batch_result(
        batch, headers, config, addresses, expected_range
    )
    agg_histories = verify_batch_result(
        decoded, headers, config, addresses, expected_range
    )
    assert set(plain_histories) == set(agg_histories)
    for address in addresses:
        assert [
            (h, t.txid()) for h, t in plain_histories[address].transactions
        ] == [(h, t.txid()) for h, t in agg_histories[address].transactions]


def test_single_result_view_round_trips(any_system, probe_addresses):
    """batch_of_result wraps one QueryResult into an encodable batch."""
    config = any_system.config
    for address in probe_addresses.values():
        result = answer_query(any_system, address)
        batch = batch_of_result(result)
        aggregated = encode_aggregated_batch(batch, config)
        decoded = decode_aggregated_batch(aggregated, config)
        assert decoded.serialize(config) == batch.serialize(config)


def test_aggregation_shrinks_bmt_batches(lvq_system, probe_addresses):
    """On the BMT system shared-node dedup wins before any compression."""
    config = lvq_system.config
    _, batch = _probe_batch(lvq_system, probe_addresses)
    plain = batch.serialize(config)
    aggregated = encode_aggregated_batch(batch, config)
    assert len(aggregated) < len(plain)


def test_wrong_config_kind_is_refused(lvq_system, strawman_system,
                                      probe_addresses):
    _, batch = _probe_batch(lvq_system, probe_addresses)
    with pytest.raises(ProofError):
        encode_aggregated_batch(batch, strawman_system.config)


def test_truncated_frames_raise_typed_errors(lvq_system, probe_addresses):
    """Every prefix of the frame fails decoding with EncodingError."""
    config = lvq_system.config
    _, batch = _probe_batch(lvq_system, probe_addresses)
    aggregated = encode_aggregated_batch(batch, config)
    for cut in (0, 1, 2, len(aggregated) // 2, len(aggregated) - 1):
        with pytest.raises(EncodingError):
            decode_aggregated_batch(aggregated[:cut], config)
    with pytest.raises(EncodingError):
        decode_aggregated_batch(aggregated + b"\x00", config)


def test_dangling_blob_reference_is_typed(lvq_system, probe_addresses):
    """A slot pointing past the blob table must raise, not index-crash.

    The frame opens with the table length; forcing it to zero turns
    every back-reference in the body into a dangling one.
    """
    from repro.crypto.encoding import ByteReader, write_varint

    config = lvq_system.config
    _, batch = _probe_batch(lvq_system, probe_addresses)
    aggregated = encode_aggregated_batch(batch, config)
    reader = ByteReader(aggregated)
    table_len = reader.varint()
    assert table_len > 0, "probe batch should populate the blob table"
    for _ in range(table_len):
        reader.var_bytes()
    body = aggregated[len(aggregated) - reader.remaining:]
    mangled = write_varint(0) + body
    with pytest.raises(EncodingError):
        decode_aggregated_batch(mangled, config)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_bitflip_sweep_never_crashes(any_system, probe_addresses, seed):
    """Arbitrary single-byte mutations: typed error or oracle-equal bytes.

    A flip inside a blob's *contents* can decode fine (the table stores
    opaque bytes) — but then the reserialized batch must differ from the
    original plain bytes only in the corresponding position, i.e. decode
    is still a function of the bytes; it must never raise anything
    outside ReproError.
    """
    import random

    config = any_system.config
    _, batch = _probe_batch(any_system, probe_addresses)
    aggregated = bytearray(encode_aggregated_batch(batch, config))
    rng = random.Random(seed * 7919)
    for _ in range(80):
        pos = rng.randrange(len(aggregated))
        old = aggregated[pos]
        aggregated[pos] = rng.randrange(256)
        try:
            decoded = decode_aggregated_batch(bytes(aggregated), config)
        except ReproError:
            pass  # typed rejection — fine
        else:
            # Accepted: reserialization must still be well-defined.
            decoded.serialize(config)
        finally:
            aggregated[pos] = old


def test_tampered_blob_table_fails_verification(lvq_system, probe_addresses):
    """Flipping a byte inside a table blob (a hash, a tx, a filter) must
    be caught by the verifier even when decoding succeeds."""
    from repro.crypto.encoding import ByteReader
    from repro.errors import VerificationError

    config = lvq_system.config
    addresses, batch = _probe_batch(lvq_system, probe_addresses)
    aggregated = encode_aggregated_batch(batch, config)
    reader = ByteReader(aggregated)
    table_len = reader.varint()
    assert table_len > 0
    # Locate the first table blob's first content byte and flip it.
    head = len(aggregated) - reader.remaining
    first_blob = reader.var_bytes()
    offset = (len(aggregated) - reader.remaining) - len(first_blob)
    mangled = bytearray(aggregated)
    mangled[offset] ^= 0x01
    expected_range = (1, lvq_system.tip_height)
    try:
        decoded = decode_aggregated_batch(bytes(mangled), config)
    except EncodingError:
        return  # refused at decode time — equally sound
    with pytest.raises(VerificationError):
        verify_batch_result(
            decoded,
            lvq_system.headers(),
            config,
            addresses,
            expected_range,
        )
