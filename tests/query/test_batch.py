"""Tests for batch queries (shared-filter amortization)."""

import pytest

from repro.errors import (
    CompletenessError,
    ProofError,
    QueryError,
    VerificationError,
)
from repro.query.batch import (
    BatchQueryResult,
    answer_batch_query,
    verify_batch_result,
)
from repro.query.prover import answer_query


def _truth(workload, address, first=1, last=None):
    last = last if last is not None else len(workload.bodies) - 1
    return [
        (h, tx.txid())
        for h, tx in workload.history_of(address)
        if first <= h <= last
    ]


class TestHonestBatch:
    def test_batch_matches_individual_queries(
        self, workload, any_system, probe_addresses
    ):
        addresses = list(probe_addresses.values())
        batch = answer_batch_query(any_system, addresses)
        histories = verify_batch_result(
            batch, any_system.headers(), any_system.config, addresses
        )
        for address in addresses:
            assert [
                (h, tx.txid()) for h, tx in histories[address].transactions
            ] == _truth(workload, address)

    def test_range_batch(self, workload, strawman_system, probe_addresses):
        addresses = [probe_addresses["Addr5"], probe_addresses["Addr6"]]
        batch = answer_batch_query(strawman_system, addresses, 10, 30)
        histories = verify_batch_result(
            batch,
            strawman_system.headers(),
            strawman_system.config,
            addresses,
            expected_range=(10, 30),
        )
        for address in addresses:
            assert [
                (h, tx.txid()) for h, tx in histories[address].transactions
            ] == _truth(workload, address, 10, 30)

    def test_serialization_roundtrip(self, any_system, probe_addresses):
        addresses = list(probe_addresses.values())[:3]
        config = any_system.config
        batch = answer_batch_query(any_system, addresses)
        payload = batch.serialize(config)
        restored = BatchQueryResult.deserialize(payload, config)
        assert restored.serialize(config) == payload
        verify_batch_result(
            restored, any_system.headers(), config, addresses
        )


class TestAmortization:
    def test_batch_cheaper_than_individual_on_strawman(
        self, strawman_system, probe_addresses
    ):
        """Six addresses share the per-block filters: the batch costs far
        less than six separate answers."""
        config = strawman_system.config
        addresses = list(probe_addresses.values())
        individual = sum(
            answer_query(strawman_system, address).size_bytes(config)
            for address in addresses
        )
        batch = answer_batch_query(strawman_system, addresses).size_bytes(
            config
        )
        # Five of the six filter sets are saved (one stays).
        filter_set = strawman_system.tip_height * config.bf_bytes
        assert batch < individual - 4 * filter_set

    def test_batch_overhead_is_marginal_per_address(
        self, strawman_system, probe_addresses
    ):
        config = strawman_system.config
        one = answer_batch_query(
            strawman_system, [probe_addresses["Addr1"]]
        ).size_bytes(config)
        two = answer_batch_query(
            strawman_system,
            [probe_addresses["Addr1"], probe_addresses["Addr2"]],
        ).size_bytes(config)
        # Adding an inactive-ish address costs much less than the filters.
        filters = strawman_system.tip_height * config.bf_bytes
        assert two - one < filters / 4

    def test_bmt_batch_is_concatenation(self, lvq_system, probe_addresses):
        config = lvq_system.config
        addresses = [probe_addresses["Addr1"], probe_addresses["Addr2"]]
        batch = answer_batch_query(lvq_system, addresses).size_bytes(config)
        individual = sum(
            answer_query(lvq_system, address).size_bytes(config)
            for address in addresses
        )
        # No sharing on BMT systems; sizes are within framing slack.
        assert abs(batch - individual) < 200


class TestBatchTampering:
    def test_dropped_resolution_rejected(
        self, workload, strawman_system, probe_addresses
    ):
        addresses = [probe_addresses["Addr6"]]
        batch = answer_batch_query(strawman_system, addresses)
        answers = batch.per_address_answers[0]
        index = next(
            i for i, resolution in enumerate(answers) if resolution is not None
        )
        answers[index] = None
        with pytest.raises(CompletenessError):
            verify_batch_result(
                batch, strawman_system.headers(), strawman_system.config
            )

    def test_swapped_filter_rejected(self, strawman_system, probe_addresses):
        addresses = [probe_addresses["Addr1"]]
        batch = answer_batch_query(strawman_system, addresses)
        from repro.bloom.filter import BloomFilter

        batch.shared_filters[0] = BloomFilter(
            strawman_system.config.bf_bits, strawman_system.config.num_hashes
        )
        with pytest.raises(VerificationError):
            verify_batch_result(
                batch, strawman_system.headers(), strawman_system.config
            )

    def test_wrong_address_list_rejected(
        self, strawman_system, probe_addresses
    ):
        addresses = [probe_addresses["Addr1"]]
        batch = answer_batch_query(strawman_system, addresses)
        with pytest.raises(VerificationError):
            verify_batch_result(
                batch,
                strawman_system.headers(),
                strawman_system.config,
                [probe_addresses["Addr2"]],
            )

    def test_narrowed_range_rejected(self, strawman_system, probe_addresses):
        addresses = [probe_addresses["Addr1"]]
        batch = answer_batch_query(strawman_system, addresses, 1, 30)
        with pytest.raises(CompletenessError):
            verify_batch_result(
                batch,
                strawman_system.headers(),
                strawman_system.config,
                addresses,
                expected_range=(1, 48),
            )

    def test_stale_tip_rejected(self, strawman_system, probe_addresses):
        addresses = [probe_addresses["Addr1"]]
        batch = answer_batch_query(strawman_system, addresses)
        with pytest.raises(CompletenessError):
            verify_batch_result(
                batch,
                strawman_system.headers()[:-2],
                strawman_system.config,
                addresses,
            )


class TestHeaderBfBatch:
    def test_batch_on_header_bf_strawman(self, workload, probe_addresses):
        """The §IV-A original strawman: filters live in headers, batches
        carry only resolutions."""
        from repro.query.builder import build_system
        from repro.query.config import SystemConfig

        config = SystemConfig.strawman_header_bf(bf_bytes=96)
        system = build_system(workload.bodies, config)
        addresses = [probe_addresses["Addr1"], probe_addresses["Addr6"]]
        batch = answer_batch_query(system, addresses)
        payload = batch.serialize(config)
        restored = BatchQueryResult.deserialize(payload, config)
        histories = verify_batch_result(
            restored, system.headers(), config, addresses
        )
        for address in addresses:
            assert [
                (h, tx.txid()) for h, tx in histories[address].transactions
            ] == _truth(workload, address)
        # No filter bytes at all in the message.
        assert len(payload) < 100 + sum(
            len(r.serialize()) if r is not None else 1
            for answers in restored.per_address_answers
            for r in answers
        ) + 200


class TestBmtBatchTampering:
    def test_cross_address_segment_swap_rejected(
        self, lvq_system, probe_addresses
    ):
        """Serving address A's segment proofs as address B's must fail
        (their multiproofs check different bit positions)."""
        addresses = [probe_addresses["Addr5"], probe_addresses["Addr6"]]
        batch = answer_batch_query(lvq_system, addresses)
        batch.per_address_segments[0], batch.per_address_segments[1] = (
            batch.per_address_segments[1],
            batch.per_address_segments[0],
        )
        with pytest.raises(VerificationError):
            verify_batch_result(
                batch, lvq_system.headers(), lvq_system.config, addresses
            )


class TestValidation:
    def test_empty_batch_rejected(self, strawman_system):
        with pytest.raises(QueryError):
            answer_batch_query(strawman_system, [])

    def test_duplicate_addresses_rejected(
        self, strawman_system, probe_addresses
    ):
        address = probe_addresses["Addr1"]
        with pytest.raises(ProofError):
            answer_batch_query(strawman_system, [address, address])
