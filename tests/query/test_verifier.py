"""Unit tests for light-node verification: honest answers accepted,
hand-crafted deviations rejected with the right error class."""

import pytest

from repro.errors import (
    CompletenessError,
    CorrectnessError,
    VerificationError,
)
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.fragments import (
    ExistenceResolution,
    FpmResolution,
    IntegralBlockResolution,
)
from repro.query.prover import answer_query
from repro.query.verifier import verify_result


class TestHonestAnswersAccepted:
    def test_every_system_every_probe(self, workload, any_system, probe_addresses):
        headers = any_system.headers()
        for name, address in probe_addresses.items():
            result = answer_query(any_system, address)
            history = verify_result(result, headers, any_system.config, address)
            truth = workload.history_of(address)
            assert [(h, t.txid()) for h, t in history.transactions] == [
                (h, t.txid()) for h, t in truth
            ], f"{any_system.config.kind.value}/{name}"

    def test_balances_match_equation1(self, workload, any_system, probe_addresses):
        from repro.chain.utxo import balance_from_history

        headers = any_system.headers()
        for address in probe_addresses.values():
            result = answer_query(any_system, address)
            history = verify_result(result, headers, any_system.config, address)
            expected = balance_from_history(
                address, (tx for _h, tx in workload.history_of(address))
            )
            assert history.balance() == expected

    def test_endpoint_stats_only_on_bmt_systems(
        self, lvq_system, strawman_system, probe_addresses
    ):
        address = probe_addresses["Addr1"]
        lvq_history = verify_result(
            answer_query(lvq_system, address),
            lvq_system.headers(),
            lvq_system.config,
        )
        assert lvq_history.num_endpoints >= 1
        strawman_history = verify_result(
            answer_query(strawman_system, address),
            strawman_system.headers(),
            strawman_system.config,
        )
        assert strawman_history.num_endpoints is None


class TestResultEnvelope:
    def test_wrong_system_kind(self, lvq_system, strawman_system, probe_addresses):
        result = answer_query(strawman_system, probe_addresses["Addr1"])
        with pytest.raises(VerificationError):
            verify_result(result, lvq_system.headers(), lvq_system.config)

    def test_wrong_address(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr2"])
        with pytest.raises(VerificationError):
            verify_result(
                result,
                lvq_system.headers(),
                lvq_system.config,
                expected_address=probe_addresses["Addr3"],
            )

    def test_stale_tip(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr1"])
        shorter = lvq_system.headers()[:-4]
        with pytest.raises(CompletenessError):
            verify_result(result, shorter, lvq_system.config)


class TestSegmentTampering:
    def test_dropped_segment(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr1"])
        result.segments.pop()
        with pytest.raises(CompletenessError):
            verify_result(result, lvq_system.headers(), lvq_system.config)

    def test_reordered_segments(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr1"])
        assert len(result.segments) >= 2
        result.segments.reverse()
        with pytest.raises(CompletenessError):
            verify_result(result, lvq_system.headers(), lvq_system.config)

    def test_missing_resolution(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr6"])
        for segment in result.segments:
            if segment.resolutions:
                del segment.resolutions[sorted(segment.resolutions)[0]]
                break
        with pytest.raises(CompletenessError):
            verify_result(result, lvq_system.headers(), lvq_system.config)

    def test_multiproof_from_wrong_segment(self, lvq_system, probe_addresses):
        result = answer_query(lvq_system, probe_addresses["Addr1"])
        seg_a, seg_b = result.segments[0], result.segments[1]
        seg_a.multiproof, seg_b.multiproof = seg_b.multiproof, seg_a.multiproof
        with pytest.raises(VerificationError):
            verify_result(result, lvq_system.headers(), lvq_system.config)


class TestExistenceTampering:
    def _result_with_existence(self, system, workload, probe_addresses):
        address = probe_addresses["Addr5"]
        return address, answer_query(system, address)

    def test_undercount_rejected(self, workload, lvq_system, probe_addresses):
        address, result = self._result_with_existence(
            lvq_system, workload, probe_addresses
        )
        for segment in result.segments:
            for resolution in segment.resolutions.values():
                if (
                    isinstance(resolution, ExistenceResolution)
                    and len(resolution.entries) >= 2
                ):
                    resolution.entries.pop()
                    with pytest.raises(CompletenessError):
                        verify_result(
                            result, lvq_system.headers(), lvq_system.config
                        )
                    return
        pytest.skip("no multi-entry block in this workload")

    def test_duplicate_entry_rejected(self, workload, lvq_system, probe_addresses):
        address, result = self._result_with_existence(
            lvq_system, workload, probe_addresses
        )
        for segment in result.segments:
            for resolution in segment.resolutions.values():
                if isinstance(resolution, ExistenceResolution):
                    resolution.entries.append(resolution.entries[0])
                    with pytest.raises(VerificationError):
                        verify_result(
                            result, lvq_system.headers(), lvq_system.config
                        )
                    return
        pytest.fail("expected at least one existence resolution")

    def test_foreign_transaction_rejected(
        self, workload, lvq_system, probe_addresses
    ):
        """A (tx, branch) pair from another address's history must fail."""
        address = probe_addresses["Addr5"]
        result = answer_query(lvq_system, address)
        other = answer_query(lvq_system, probe_addresses["Addr6"])
        donor = None
        for segment in other.segments:
            for resolution in segment.resolutions.values():
                if isinstance(resolution, ExistenceResolution):
                    donor = resolution.entries[0]
        assert donor is not None
        for segment in result.segments:
            for resolution in segment.resolutions.values():
                if isinstance(resolution, ExistenceResolution):
                    resolution.entries[-1] = donor
                    with pytest.raises(VerificationError):
                        verify_result(
                            result, lvq_system.headers(), lvq_system.config
                        )
                    return
        pytest.fail("expected at least one existence resolution")


class TestSystemDiscipline:
    def test_no_smt_system_rejects_existence_resolution(
        self, workload, lvq_no_smt_system, probe_addresses
    ):
        """LVQ-no-SMT must ship IBs; converting one to Merkle branches
        (which cannot prove completeness) is rejected."""
        address = probe_addresses["Addr5"]
        result = answer_query(lvq_no_smt_system, address)
        system = lvq_no_smt_system
        for segment in result.segments:
            for height, resolution in segment.resolutions.items():
                if isinstance(resolution, IntegralBlockResolution):
                    block = system.chain.block_at(height)
                    txs = block.transactions_involving(address)
                    if not txs:
                        continue
                    from repro.query.fragments import TxWithBranch

                    tree = system.merkle_trees[height]
                    entries = [
                        TxWithBranch(tx, tree.branch(block.transactions.index(tx)))
                        for tx in txs
                    ]
                    segment.resolutions[height] = ExistenceResolution(
                        None, entries
                    )
                    with pytest.raises(CompletenessError):
                        verify_result(result, system.headers(), system.config)
                    return
        pytest.fail("expected an IB covering an active block")

    def test_smt_system_rejects_integral_block(
        self, workload, lvq_system, probe_addresses
    ):
        address = probe_addresses["Addr5"]
        result = answer_query(lvq_system, address)
        for segment in result.segments:
            for height in list(segment.resolutions):
                block = lvq_system.chain.block_at(height)
                segment.resolutions[height] = IntegralBlockResolution(
                    block.body_bytes()
                )
                with pytest.raises(VerificationError):
                    verify_result(
                        result, lvq_system.headers(), lvq_system.config
                    )
                return
        pytest.fail("expected at least one resolution")

    def test_fpm_for_present_address_rejected(
        self, workload, lvq_system, probe_addresses
    ):
        """Claiming a present address is a false positive must fail."""
        address = probe_addresses["Addr5"]
        result = answer_query(lvq_system, address)
        for segment in result.segments:
            for height, resolution in list(segment.resolutions.items()):
                if isinstance(resolution, ExistenceResolution):
                    smt = lvq_system.smts[height]
                    # Forge an 'inexistence' proof from two real branches
                    # around the true leaf — they are not adjacent.
                    index = next(
                        i
                        for i in range(smt.num_leaves)
                        if smt.leaf(i).address == address
                    )
                    from repro.merkle.sorted_tree import SmtInexistenceProof

                    if index == 0 or index + 1 >= smt.num_leaves:
                        continue
                    forged = SmtInexistenceProof(
                        smt.branch(index - 1), smt.branch(index + 1)
                    )
                    segment.resolutions[height] = FpmResolution(forged)
                    with pytest.raises(CompletenessError):
                        verify_result(
                            result, lvq_system.headers(), lvq_system.config
                        )
                    return
        pytest.skip("no interior existence leaf found")


class TestIntegralBlockTampering:
    def test_modified_body_rejected(self, workload, probe_addresses):
        system = build_system(
            workload.bodies, SystemConfig.lvq_no_smt(bf_bytes=192, segment_len=16)
        )
        address = probe_addresses["Addr6"]
        result = answer_query(system, address)
        from repro.crypto.encoding import write_varint

        for segment in result.segments:
            for height, resolution in segment.resolutions.items():
                assert isinstance(resolution, IntegralBlockResolution)
                txs = resolution.transactions()
                if len(txs) < 2:
                    continue
                kept = txs[:-1]
                parts = [write_varint(len(kept))]
                parts.extend(tx.serialize() for tx in kept)
                segment.resolutions[height] = IntegralBlockResolution(
                    b"".join(parts)
                )
                with pytest.raises(CorrectnessError):
                    verify_result(result, system.headers(), system.config)
                return
        pytest.fail("expected a multi-tx integral block")
