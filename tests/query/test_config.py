"""Unit tests for SystemConfig."""

import pytest

from repro.bloom.filter import BloomFilter
from repro.errors import QueryError
from repro.query.config import (
    SystemConfig,
    SystemKind,
    bf_commitment,
    kind_from_value,
)


class TestCapabilities:
    def test_lvq(self):
        config = SystemConfig.lvq(bf_bytes=256, segment_len=64)
        assert config.uses_bmt and config.uses_smt
        assert not config.ships_block_filters
        assert config.bf_bits == 2048

    def test_lvq_no_smt(self):
        config = SystemConfig.lvq_no_smt(bf_bytes=256, segment_len=64)
        assert config.uses_bmt and not config.uses_smt
        assert not config.ships_block_filters

    def test_lvq_no_bmt(self):
        config = SystemConfig.lvq_no_bmt(bf_bytes=128)
        assert not config.uses_bmt and config.uses_smt
        assert config.ships_block_filters

    def test_strawman(self):
        config = SystemConfig.strawman(bf_bytes=128)
        assert not config.uses_bmt and not config.uses_smt
        assert config.ships_block_filters

    def test_strawman_header_bf(self):
        config = SystemConfig.strawman_header_bf(bf_bytes=128)
        assert not config.ships_block_filters  # it lives in the header


class TestValidation:
    def test_bmt_systems_need_segment_len(self):
        with pytest.raises(QueryError):
            SystemConfig(SystemKind.LVQ, bf_bytes=128)

    def test_segment_len_power_of_two(self):
        with pytest.raises(QueryError):
            SystemConfig.lvq(bf_bytes=128, segment_len=48)

    def test_non_bmt_systems_reject_segment_len(self):
        with pytest.raises(QueryError):
            SystemConfig(SystemKind.STRAWMAN, bf_bytes=128, segment_len=64)

    def test_positive_bf(self):
        with pytest.raises(QueryError):
            SystemConfig.strawman(bf_bytes=0)

    def test_positive_hashes(self):
        with pytest.raises(QueryError):
            SystemConfig.strawman(bf_bytes=64, num_hashes=0)

    def test_equality(self):
        assert SystemConfig.lvq(128, 64) == SystemConfig.lvq(128, 64)
        assert SystemConfig.lvq(128, 64) != SystemConfig.lvq(128, 128)
        assert SystemConfig.strawman(128) != SystemConfig.lvq_no_bmt(128)


class TestBfCommitment:
    def test_deterministic(self):
        bf = BloomFilter(256, 3)
        bf.add(b"x")
        assert bf_commitment(bf) == bf_commitment(bf)

    def test_sensitive_to_content(self):
        a = BloomFilter(256, 3)
        b = BloomFilter(256, 3)
        b.add(b"x")
        assert bf_commitment(a) != bf_commitment(b)

    def test_32_bytes(self):
        assert len(bf_commitment(BloomFilter(64, 1))) == 32


class TestKindLookup:
    def test_roundtrip(self):
        for kind in SystemKind:
            assert kind_from_value(kind.value) is kind

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            kind_from_value("nope")
