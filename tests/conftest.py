"""Shared fixtures: one small deterministic chain, built for every system.

Chain construction dominates test runtime, so the workload and the five
built systems are session-scoped; tests must treat them as read-only.
Tests that need special shapes (forced false positives, empty blocks,
odd chain lengths) build their own tiny chains locally.
"""

from __future__ import annotations

import pytest

from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.query.builder import build_system
from repro.query.config import SystemConfig, SystemKind
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile

#: Chain size used throughout the suite; covering spans exercise both
#: complete segments and a Table-II style partial tail when M < blocks.
NUM_BLOCKS = 48
SEGMENT_LEN = 16

_TEST_PROBES = [
    ProbeProfile("Addr1", 0, 0),
    ProbeProfile("Addr2", 1, 1),
    ProbeProfile("Addr3", 6, 3),
    ProbeProfile("Addr4", 12, 9),
    ProbeProfile("Addr5", 25, 17),
    ProbeProfile("Addr6", 40, 14),
]


@pytest.fixture(scope="session")
def workload():
    params = WorkloadParams(
        num_blocks=NUM_BLOCKS,
        txs_per_block=10,
        seed=42,
        probes=_TEST_PROBES,
    )
    return generate_workload(params)


def _config_for(kind: SystemKind) -> SystemConfig:
    if kind is SystemKind.STRAWMAN:
        return SystemConfig.strawman(bf_bytes=96)
    if kind is SystemKind.STRAWMAN_HEADER_BF:
        return SystemConfig.strawman_header_bf(bf_bytes=96)
    if kind is SystemKind.LVQ_NO_BMT:
        return SystemConfig.lvq_no_bmt(bf_bytes=96)
    if kind is SystemKind.LVQ_NO_SMT:
        return SystemConfig.lvq_no_smt(bf_bytes=192, segment_len=SEGMENT_LEN)
    return SystemConfig.lvq(bf_bytes=192, segment_len=SEGMENT_LEN)


@pytest.fixture(scope="session", params=list(SystemKind), ids=lambda k: k.value)
def any_system(request, workload):
    """One built system per SystemKind (parametrized)."""
    return build_system(workload.bodies, _config_for(request.param))


@pytest.fixture(scope="session")
def lvq_system(workload):
    return build_system(workload.bodies, _config_for(SystemKind.LVQ))


@pytest.fixture(scope="session")
def strawman_system(workload):
    return build_system(workload.bodies, _config_for(SystemKind.STRAWMAN))


@pytest.fixture(scope="session")
def lvq_no_bmt_system(workload):
    return build_system(workload.bodies, _config_for(SystemKind.LVQ_NO_BMT))


@pytest.fixture(scope="session")
def lvq_no_smt_system(workload):
    return build_system(workload.bodies, _config_for(SystemKind.LVQ_NO_SMT))


@pytest.fixture()
def lvq_nodes(lvq_system):
    full_node = FullNode(lvq_system)
    return full_node, LightNode.from_full_node(full_node)


@pytest.fixture()
def probe_addresses(workload):
    return workload.probe_addresses
