"""Unit tests for the Bloom-filter-integrated Merkle Tree (BMT)."""

import pytest

from repro.bloom.filter import BloomFilter
from repro.crypto.encoding import ByteReader
from repro.errors import EncodingError, VerificationError
from repro.merkle.bmt import (
    BmtForest,
    BmtMultiProof,
    BmtTree,
    EndpointKind,
    leaf_hash,
    node_hash,
)

M_BITS = 128
K = 3


def bf_of(items):
    return BloomFilter.from_items(items, M_BITS, K)


def make_leaves(start, sets):
    """``sets`` is a list of item lists, one per consecutive height."""
    return [(start + i, bf_of(items)) for i, items in enumerate(sets)]


@pytest.fixture()
def tree8():
    """Eight blocks; ``b"hot"`` appears in blocks 3 and 6 (heights 3,6)."""
    sets = [
        [b"a0", b"a1"],
        [b"b0"],
        [b"hot", b"c0"],
        [b"d0", b"d1", b"d2"],
        [b"e0"],
        [b"hot"],
        [b"f0", b"f1"],
        [b"g0"],
    ]
    return BmtTree.build(make_leaves(1, sets))


class TestConstruction:
    def test_eq2_eq3_node_relations(self, tree8):
        root = tree8.root
        assert root.bf == (root.left.bf | root.right.bf)
        assert root.hash == node_hash(root.left.hash, root.right.hash, root.bf)
        leaf = root.left.left.left
        assert leaf.layer == 0
        assert leaf.hash == leaf_hash(leaf.bf)

    def test_ranges(self, tree8):
        assert (tree8.start, tree8.end) == (1, 8)
        assert tree8.root.left.start == 1 and tree8.root.left.end == 4
        assert tree8.depth == 3

    def test_single_leaf_tree(self):
        tree = BmtTree.build(make_leaves(5, [[b"x"]]))
        assert tree.depth == 0
        assert tree.root.hash == leaf_hash(tree.root.bf)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            BmtTree.build(make_leaves(1, [[b"a"], [b"b"], [b"c"]]))

    def test_non_consecutive_heights_rejected(self):
        leaves = [(1, bf_of([b"a"])), (3, bf_of([b"b"]))]
        with pytest.raises(ValueError):
            BmtTree.build(leaves)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BmtTree.build([])

    def test_root_contains_every_block_item(self, tree8):
        for item in (b"a0", b"hot", b"g0"):
            assert item in tree8.root.bf


class TestEndpointDiscovery:
    def test_absent_item_top_endpoint(self):
        """If even the root check succeeds, the root is the one endpoint."""
        tree = BmtTree.build(make_leaves(1, [[b"a"], [b"b"], [b"c"], [b"d"]]))
        endpoints = tree.find_endpoints(b"definitely-absent-item-1")
        if len(endpoints) == 1 and endpoints[0].node is tree.root:
            assert endpoints[0].kind is EndpointKind.CLEAN

    def test_present_item_reaches_its_leaves(self, tree8):
        endpoints = tree8.find_endpoints(b"hot")
        failed = [
            e.node.start for e in endpoints if e.kind is EndpointKind.LEAF_FAILED
        ]
        assert 3 in failed and 6 in failed

    def test_endpoints_partition_the_range(self, tree8):
        for item in (b"hot", b"absent-x", b"a0"):
            endpoints = tree8.find_endpoints(item)
            covered = []
            for endpoint in endpoints:
                covered.extend(
                    range(endpoint.node.start, endpoint.node.end + 1)
                )
            assert covered == list(range(1, 9))

    def test_clean_endpoints_witness_inexistence(self, tree8):
        for endpoint in tree8.find_endpoints(b"hot"):
            if endpoint.kind is EndpointKind.CLEAN:
                assert b"hot" not in endpoint.node.bf


class TestMultiProof:
    def verify(self, tree, proof, item):
        return proof.verify(
            tree.root.hash, item, tree.start, tree.num_leaves, M_BITS, K
        )

    def test_absent_item_verifies(self, tree8):
        item = b"absent-item"
        proof = tree8.multiproof(item)
        verified = self.verify(tree8, proof, item)
        assert verified.failed_heights == []
        covered = sorted(
            height
            for start, end in verified.clean_ranges
            for height in range(start, end + 1)
        )
        assert covered == list(range(1, 9))

    def test_present_item_reports_failed_heights(self, tree8):
        proof = tree8.multiproof(b"hot")
        verified = self.verify(tree8, proof, b"hot")
        assert set(verified.failed_heights) >= {3, 6}
        covered = sorted(
            [h for s, e in verified.clean_ranges for h in range(s, e + 1)]
            + verified.failed_heights
        )
        assert covered == list(range(1, 9))

    def test_endpoint_count_matches_tree(self, tree8):
        proof = tree8.multiproof(b"hot")
        assert proof.num_endpoints() == len(tree8.find_endpoints(b"hot"))
        verified = self.verify(tree8, proof, b"hot")
        assert verified.num_endpoints == proof.num_endpoints()

    def test_wrong_root_rejected(self, tree8):
        proof = tree8.multiproof(b"absent")
        with pytest.raises(VerificationError):
            proof.verify(b"\x00" * 32, b"absent", 1, 8, M_BITS, K)

    def test_wrong_item_rejected(self, tree8):
        """A proof for one item is not a proof for another."""
        proof = tree8.multiproof(b"absent-1")
        with pytest.raises(VerificationError):
            self.verify(tree8, proof, b"hot")

    def test_tampered_endpoint_filter_rejected(self, tree8):
        item = b"absent-item"
        proof = tree8.multiproof(item)
        # Flip a set bit somewhere in an endpoint filter.
        stack = [proof._root]
        while stack:
            node = stack.pop()
            if node.tag == 0:
                stack.extend((node.left, node.right))
                continue
            for index in range(node.bf.size_bits):
                if node.bf.bits.get(index):
                    node.bf.bits.clear(index)
                    stack = []
                    break
            if not stack:
                break
        with pytest.raises(VerificationError):
            self.verify(tree8, proof, item)

    def test_wrong_block_count_rejected(self, tree8):
        # The verifier fixes the tree depth from its own trusted segment
        # computation; a structured proof folded at the wrong depth puts
        # leaf endpoints at non-zero layers and must be rejected.
        proof = tree8.multiproof(b"hot")
        with pytest.raises(VerificationError):
            proof.verify(tree8.root.hash, b"hot", 1, 4, M_BITS, K)
        with pytest.raises(VerificationError):
            proof.verify(tree8.root.hash, b"hot", 1, 16, M_BITS, K)

    def test_non_power_of_two_count_rejected(self, tree8):
        proof = tree8.multiproof(b"absent")
        with pytest.raises(VerificationError):
            proof.verify(tree8.root.hash, b"absent", 1, 6, M_BITS, K)

    def test_failed_leaf_count(self, tree8):
        proof = tree8.multiproof(b"hot")
        assert proof.failed_leaf_count() >= 2

    def test_serialization_roundtrip(self, tree8):
        for item in (b"hot", b"absent-item"):
            proof = tree8.multiproof(item)
            payload = proof.serialize()
            reader = ByteReader(payload)
            restored = BmtMultiProof.deserialize(reader, M_BITS, K)
            reader.finish()
            assert restored.serialize() == payload
            self.verify(tree8, restored, item)

    def test_size_bytes(self, tree8):
        proof = tree8.multiproof(b"absent")
        assert proof.size_bytes() == len(proof.serialize())

    def test_unknown_tag_rejected(self):
        with pytest.raises(EncodingError):
            BmtMultiProof.deserialize(ByteReader(b"\x09"), M_BITS, K)

    def test_truncated_rejected(self, tree8):
        payload = tree8.multiproof(b"absent").serialize()
        with pytest.raises(EncodingError):
            reader = ByteReader(payload[:-1])
            BmtMultiProof.deserialize(reader, M_BITS, K)
            reader.finish()


class TestRestrictedMultiProof:
    """Range-restricted proofs: out-of-range subtrees become stubs."""

    def verify(self, tree, proof, item, query_range):
        return proof.verify(
            tree.root.hash,
            item,
            tree.start,
            tree.num_leaves,
            M_BITS,
            K,
            query_range=query_range,
        )

    def test_restricted_proof_verifies(self, tree8):
        proof = tree8.multiproof(b"hot", query_range=(5, 7))
        verified = self.verify(tree8, proof, b"hot", (5, 7))
        assert 6 in verified.failed_heights  # hot is in block 6
        assert 3 not in verified.failed_heights  # outside the range
        covered = sorted(
            [
                h
                for s, e in verified.clean_ranges
                for h in range(s, e + 1)
                if 5 <= h <= 7
            ]
            + verified.failed_heights
        )
        assert covered == [5, 6, 7]

    def test_stubs_cost_less(self, tree8):
        full = tree8.multiproof(b"hot")
        narrow = tree8.multiproof(b"hot", query_range=(6, 6))
        assert narrow.size_bytes() < full.size_bytes()
        assert narrow.num_stubs() > 0
        assert full.num_stubs() == 0

    def test_restricted_proof_serialization_roundtrip(self, tree8):
        proof = tree8.multiproof(b"hot", query_range=(3, 6))
        payload = proof.serialize()
        reader = ByteReader(payload)
        restored = BmtMultiProof.deserialize(reader, M_BITS, K)
        reader.finish()
        assert restored.serialize() == payload
        self.verify(tree8, restored, b"hot", (3, 6))

    def test_restricted_proof_rejected_for_wider_range(self, tree8):
        """Stubs intruding into the claimed range must be rejected."""
        proof = tree8.multiproof(b"hot", query_range=(6, 6))
        assert proof.num_stubs() > 0
        with pytest.raises(VerificationError):
            self.verify(tree8, proof, b"hot", (1, 8))
        with pytest.raises(VerificationError):
            self.verify(tree8, proof, b"hot", (5, 7))

    def test_full_range_proof_rejected_for_narrow_query(self, tree8):
        """Strictness: failed leaves outside the queried range must be
        stubs, so a whole-tree proof is NOT a valid answer to a narrow
        query — the prover must produce the restricted form.  (This keeps
        the failed-heights/resolutions correspondence unambiguous.)"""
        proof = tree8.multiproof(b"hot")
        with pytest.raises(VerificationError):
            self.verify(tree8, proof, b"hot", (5, 7))
        # The properly restricted proof, of course, verifies.
        restricted = tree8.multiproof(b"hot", query_range=(5, 7))
        verified = self.verify(tree8, restricted, b"hot", (5, 7))
        assert 6 in verified.failed_heights

    def test_disjoint_range_rejected_at_build(self, tree8):
        with pytest.raises(ValueError):
            tree8.multiproof(b"hot", query_range=(9, 12))
        with pytest.raises(ValueError):
            tree8.multiproof(b"hot", query_range=(5, 3))

    def test_empty_query_range_rejected_at_verify(self, tree8):
        proof = tree8.multiproof(b"hot")
        with pytest.raises(VerificationError):
            self.verify(tree8, proof, b"hot", (6, 5))

    def test_stub_hash_is_authenticated(self, tree8):
        """Tampering with an internal stub's hash breaks the root."""
        proof = tree8.multiproof(b"hot", query_range=(5, 8))
        stack = [proof._root]
        tampered = False
        while stack and not tampered:
            node = stack.pop()
            if node.tag == 0:
                stack.extend((node.left, node.right))
            elif node.stub_hash is not None:
                node.stub_hash = bytes(32)
                tampered = True
        if not tampered:
            pytest.skip("no internal stub in this proof shape")
        with pytest.raises(VerificationError):
            self.verify(tree8, proof, b"hot", (5, 8))


class TestSingleBranch:
    def test_clean_endpoint_branch_verifies(self, tree8):
        item = b"absent-item"
        endpoints = tree8.find_endpoints(item)
        clean = [e for e in endpoints if e.kind is EndpointKind.CLEAN]
        assert clean, "expected at least one clean endpoint"
        for endpoint in clean:
            branch = tree8.branch(endpoint)
            offset, span = branch.verify_inexistence(tree8.root.hash, item)
            assert tree8.start + offset == endpoint.node.start
            assert span == endpoint.node.num_blocks

    def test_branch_root_matches_tree(self, tree8):
        endpoint = tree8.find_endpoints(b"absent-item")[0]
        branch = tree8.branch(endpoint)
        root_hash, root_bf = branch.compute_root()
        assert root_hash == tree8.root.hash
        assert root_bf == tree8.root.bf

    def test_branch_rejects_present_item(self, tree8):
        # A clean endpoint for one item cannot prove inexistence of an
        # item whose positions are all set there.
        endpoints = tree8.find_endpoints(b"a0")
        failed = [e for e in endpoints if e.kind is EndpointKind.LEAF_FAILED]
        leaf_endpoint = failed[0]
        branch = tree8.branch(leaf_endpoint)
        with pytest.raises(VerificationError):
            branch.verify_inexistence(tree8.root.hash, b"a0")

    def test_branch_serialization_roundtrip(self, tree8):
        from repro.merkle.bmt import BmtBranch

        endpoint = tree8.find_endpoints(b"absent-item")[0]
        branch = tree8.branch(endpoint)
        reader = ByteReader(branch.serialize())
        restored = BmtBranch.deserialize(reader, M_BITS, K)
        reader.finish()
        assert restored.serialize() == branch.serialize()
        assert branch.size_bytes() == len(branch.serialize())


class TestForest:
    def test_forest_matches_direct_build(self):
        sets = [[f"i{i}".encode()] for i in range(8)]
        forest = BmtForest()
        for height, bf in make_leaves(1, sets):
            forest.add_block(height, bf)
        direct = BmtTree.build(make_leaves(1, sets))
        assert forest.tree(1, 8).root.hash == direct.root.hash

    def test_subtree_reuse(self):
        forest = BmtForest()
        for height, bf in make_leaves(1, [[b"a"], [b"b"], [b"c"], [b"d"]]):
            forest.add_block(height, bf)
        big = forest.tree(1, 4)
        small = forest.tree(1, 2)
        assert big.root.left is small.root  # identical object, not a copy

    def test_duplicate_height_rejected(self):
        forest = BmtForest()
        forest.add_block(1, bf_of([b"a"]))
        with pytest.raises(ValueError):
            forest.add_block(1, bf_of([b"b"]))

    def test_missing_height_rejected(self):
        forest = BmtForest()
        forest.add_block(1, bf_of([b"a"]))
        with pytest.raises(ValueError):
            forest.node(2, 2)

    def test_bad_range_rejected(self):
        forest = BmtForest()
        for height in (1, 2, 3):
            forest.add_block(height, bf_of([b"x"]))
        with pytest.raises(ValueError):
            forest.node(1, 3)  # 3 blocks: not a power of two
