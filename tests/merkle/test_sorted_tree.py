"""Unit tests for the Sorted Merkle Tree (SMT)."""

import pytest

from repro.crypto.encoding import ByteReader
from repro.errors import EncodingError, ProofError, VerificationError
from repro.merkle.sorted_tree import (
    SMT_SENTINEL,
    SmtBranch,
    SmtInexistenceProof,
    SmtLeaf,
    SortedMerkleTree,
)


def tree_from(pairs):
    return SortedMerkleTree([SmtLeaf(a, c) for a, c in pairs])


@pytest.fixture()
def sample():
    return tree_from(
        [("1abc", 2), ("1bcd", 1), ("1def", 5), ("1xyz", 1), ("3aaa", 3)]
    )


class TestConstruction:
    def test_padding_to_power_of_two(self, sample):
        assert sample.num_real_leaves == 5
        assert sample.num_leaves == 8
        assert sample.leaf(5).is_sentinel

    def test_exact_power_of_two_not_padded(self):
        tree = tree_from([("a", 1), ("b", 1), ("c", 1), ("d", 1)])
        assert tree.num_leaves == 4
        assert not tree.leaf(3).is_sentinel

    def test_empty_block_is_single_sentinel(self):
        tree = SortedMerkleTree([])
        assert tree.num_leaves == 1
        assert tree.leaf(0).is_sentinel
        assert tree.depth == 0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            tree_from([("b", 1), ("a", 1)])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            tree_from([("a", 1), ("a", 2)])

    def test_explicit_sentinel_rejected(self):
        with pytest.raises(ValueError):
            SortedMerkleTree([SmtLeaf.sentinel()])

    def test_from_counts_sorts(self):
        tree = SortedMerkleTree.from_counts({"b": 1, "a": 2})
        assert tree.leaf(0).address == "a"
        assert tree.count_of("a") == 2

    def test_root_sensitive_to_counts(self):
        assert (
            tree_from([("a", 1)]).root != tree_from([("a", 2)]).root
        )

    def test_membership(self, sample):
        assert "1abc" in sample
        assert "1zzz" not in sample
        assert SMT_SENTINEL not in sample
        assert sample.count_of("1def") == 5
        assert sample.count_of("nope") == 0


class TestExistenceProofs:
    def test_all_leaves_provable(self, sample):
        for address in ("1abc", "1bcd", "1def", "1xyz", "3aaa"):
            branch = sample.prove_existence(address)
            assert branch.verify(sample.root)
            assert branch.leaf.address == address

    def test_count_travels_with_proof(self, sample):
        branch = sample.prove_existence("1def")
        assert branch.leaf.count == 5

    def test_absent_address_rejected(self, sample):
        with pytest.raises(ProofError):
            sample.prove_existence("absent")

    def test_forged_count_fails(self, sample):
        branch = sample.prove_existence("1abc")
        forged = SmtBranch(
            SmtLeaf("1abc", 99), branch.leaf_index, branch.siblings
        )
        assert not forged.verify(sample.root)

    def test_forged_address_fails(self, sample):
        branch = sample.prove_existence("1abc")
        forged = SmtBranch(
            SmtLeaf("1abd", 2), branch.leaf_index, branch.siblings
        )
        assert not forged.verify(sample.root)

    def test_serialization_roundtrip(self, sample):
        branch = sample.prove_existence("1xyz")
        reader = ByteReader(branch.serialize())
        restored = SmtBranch.deserialize(reader)
        reader.finish()
        assert restored == branch
        assert restored.verify(sample.root)


class TestInexistenceProofs:
    def test_interior_gap(self, sample):
        proof = sample.prove_inexistence("1c")  # between 1bcd and 1def
        proof.verify(sample.root, "1c")
        assert proof.predecessor.leaf.address == "1bcd"
        assert proof.successor.leaf.address == "1def"

    def test_before_first_leaf(self, sample):
        proof = sample.prove_inexistence("0zzz")
        proof.verify(sample.root, "0zzz")
        assert proof.predecessor is None
        assert proof.successor.leaf_index == 0

    def test_after_last_real_leaf_uses_sentinel(self, sample):
        proof = sample.prove_inexistence("9zzz")
        proof.verify(sample.root, "9zzz")
        assert proof.successor.leaf.is_sentinel

    def test_full_tree_right_edge(self):
        tree = tree_from([("a", 1), ("b", 1), ("c", 1), ("d", 1)])
        proof = tree.prove_inexistence("z")
        proof.verify(tree.root, "z")
        assert proof.successor is None
        assert proof.predecessor.leaf_index == 3

    def test_empty_tree(self):
        tree = SortedMerkleTree([])
        proof = tree.prove_inexistence("anything")
        proof.verify(tree.root, "anything")

    def test_existing_address_rejected_at_prove_time(self, sample):
        with pytest.raises(ProofError):
            sample.prove_inexistence("1abc")

    def test_proof_does_not_transfer_to_other_address(self, sample):
        proof = sample.prove_inexistence("1c")
        with pytest.raises(VerificationError):
            proof.verify(sample.root, "1bcd")  # an existing leaf
        with pytest.raises(VerificationError):
            proof.verify(sample.root, "1f")  # outside the proven interval

    def test_non_adjacent_branches_rejected(self, sample):
        pred = sample.branch(0)
        succ = sample.branch(2)
        proof = SmtInexistenceProof(pred, succ)
        with pytest.raises(VerificationError):
            proof.verify(sample.root, "1abd")

    def test_wrong_root_rejected(self, sample):
        other = tree_from([("1abc", 2)])
        proof = sample.prove_inexistence("1c")
        with pytest.raises(VerificationError):
            proof.verify(other.root, "1c")

    def test_successor_only_requires_index_zero(self, sample):
        proof = SmtInexistenceProof(None, sample.branch(1))
        with pytest.raises(VerificationError):
            proof.verify(sample.root, "0zzz")

    def test_predecessor_only_requires_last_slot(self):
        tree = tree_from([("a", 1), ("b", 1), ("c", 1), ("d", 1)])
        proof = SmtInexistenceProof(tree.branch(2), None)
        with pytest.raises(VerificationError):
            proof.verify(tree.root, "z")

    def test_predecessor_only_rejects_sentinel(self, sample):
        # Slot 7 is a sentinel; a malicious prover may not use it as the
        # "last real leaf" of a predecessor-only proof.
        proof = SmtInexistenceProof(sample.branch(7), None)
        with pytest.raises(VerificationError):
            proof.verify(sample.root, SMT_SENTINEL + "x")

    def test_needs_at_least_one_branch(self):
        with pytest.raises(ProofError):
            SmtInexistenceProof(None, None)

    def test_serialization_roundtrip(self, sample):
        for address in ("0zzz", "1c", "9zzz"):
            proof = sample.prove_inexistence(address)
            reader = ByteReader(proof.serialize())
            restored = SmtInexistenceProof.deserialize(reader)
            reader.finish()
            restored.verify(sample.root, address)

    def test_bad_flags_rejected(self):
        with pytest.raises(EncodingError):
            SmtInexistenceProof.deserialize(ByteReader(b"\x00"))


class TestLeafValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SmtLeaf("a", -1)

    def test_address_beyond_sentinel_rejected(self):
        with pytest.raises(ValueError):
            SmtLeaf("\x7fzz", 1)

    def test_sentinel_constructor(self):
        leaf = SmtLeaf.sentinel()
        assert leaf.is_sentinel
        assert leaf.count == 0

    def test_leaf_serialization_roundtrip(self):
        leaf = SmtLeaf("1SomeAddress", 42)
        reader = ByteReader(leaf.serialize())
        assert SmtLeaf.deserialize(reader) == leaf
