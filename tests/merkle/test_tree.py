"""Unit tests for the Bitcoin-style Merkle tree and branches."""

import pytest

from repro.crypto.encoding import ByteReader
from repro.crypto.hashing import sha256, sha256d
from repro.errors import EncodingError, ProofError
from repro.merkle.tree import MerkleBranch, MerkleTree


def leaves(n):
    return [sha256(f"leaf-{i}".encode()) for i in range(n)]


class TestTreeConstruction:
    def test_single_leaf_root_is_leaf(self):
        [leaf] = leaves(1)
        tree = MerkleTree([leaf])
        assert tree.root == leaf
        assert tree.depth == 0

    def test_two_leaves(self):
        pair = leaves(2)
        tree = MerkleTree(pair)
        assert tree.root == sha256d(pair[0] + pair[1])

    def test_odd_count_duplicates_last(self):
        """Bitcoin's rule: [a,b,c] hashes like [a,b,c,c]."""
        a, b, c = leaves(3)
        tree = MerkleTree([a, b, c])
        expected = sha256d(sha256d(a + b) + sha256d(c + c))
        assert tree.root == expected

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_depth(self, n):
        tree = MerkleTree(leaves(n))
        assert tree.num_leaves == n
        assert 1 << tree.depth >= n
        if n > 1:
            assert 1 << (tree.depth - 1) < n

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_bad_leaf_size_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([b"short"])

    def test_order_matters(self):
        a, b = leaves(2)
        assert MerkleTree([a, b]).root != MerkleTree([b, a]).root


class TestBranches:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 16])
    def test_every_leaf_proves(self, n):
        tree = MerkleTree(leaves(n))
        for index in range(n):
            branch = tree.branch(index)
            assert branch.verify(tree.root)
            assert branch.leaf_hash == tree.leaf(index)
            assert branch.leaf_index == index

    def test_branch_out_of_range(self):
        tree = MerkleTree(leaves(4))
        with pytest.raises(IndexError):
            tree.branch(4)
        with pytest.raises(IndexError):
            tree.branch(-1)

    def test_wrong_root_rejected(self):
        tree = MerkleTree(leaves(8))
        other = MerkleTree(leaves(9))
        assert not tree.branch(3).verify(other.root)

    def test_tampered_leaf_rejected(self):
        tree = MerkleTree(leaves(8))
        branch = tree.branch(2)
        forged = MerkleBranch(
            sha256(b"evil"), branch.leaf_index, branch.siblings
        )
        assert not forged.verify(tree.root)

    def test_tampered_sibling_rejected(self):
        tree = MerkleTree(leaves(8))
        branch = tree.branch(2)
        siblings = list(branch.siblings)
        siblings[1] = sha256(b"evil")
        forged = MerkleBranch(branch.leaf_hash, branch.leaf_index, siblings)
        assert not forged.verify(tree.root)

    def test_wrong_index_rejected(self):
        """The index drives sibling sides; a lie breaks the fold."""
        tree = MerkleTree(leaves(8))
        branch = tree.branch(2)
        forged = MerkleBranch(branch.leaf_hash, 3, branch.siblings)
        assert not forged.verify(tree.root)

    def test_duplicated_last_leaf_still_proves(self):
        tree = MerkleTree(leaves(5))
        assert tree.branch(4).verify(tree.root)

    def test_index_depth_consistency_enforced(self):
        with pytest.raises(ProofError):
            MerkleBranch(sha256(b"x"), 4, [sha256(b"s")] * 2)

    def test_bad_hash_sizes_rejected(self):
        with pytest.raises(ProofError):
            MerkleBranch(b"short", 0, [])
        with pytest.raises(ProofError):
            MerkleBranch(sha256(b"x"), 0, [b"short"])


class TestBranchSerialization:
    def test_roundtrip(self):
        tree = MerkleTree(leaves(11))
        branch = tree.branch(6)
        restored = MerkleBranch.from_bytes(branch.serialize())
        assert restored == branch
        assert restored.verify(tree.root)

    def test_size_bytes_is_len_serialize(self):
        branch = MerkleTree(leaves(16)).branch(5)
        assert branch.size_bytes() == len(branch.serialize())

    def test_trailing_garbage_rejected(self):
        branch = MerkleTree(leaves(4)).branch(0)
        with pytest.raises(EncodingError):
            MerkleBranch.from_bytes(branch.serialize() + b"\x00")

    def test_truncated_rejected(self):
        branch = MerkleTree(leaves(4)).branch(0)
        with pytest.raises(EncodingError):
            MerkleBranch.from_bytes(branch.serialize()[:-1])

    def test_implausible_depth_rejected(self):
        payload = sha256(b"x") + b"\x00" + b"\x60"  # depth 96
        with pytest.raises(EncodingError):
            MerkleBranch.deserialize(ByteReader(payload))

    def test_size_grows_logarithmically(self):
        small = MerkleTree(leaves(4)).branch(0).size_bytes()
        large = MerkleTree(leaves(256)).branch(0).size_bytes()
        # 6 extra levels => 6 extra hashes.
        assert large - small == 6 * 32
