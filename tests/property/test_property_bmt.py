"""Property-based tests for the BMT.

Invariants under ANY block contents and ANY probe item:

* the endpoints of a check partition the covered height range exactly;
* a verified multiproof reports a clean/failed partition that covers the
  range, never marks a block containing the item as clean, and accepts
  only the root it was built from.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.filter import BloomFilter
from repro.merkle.bmt import BmtMultiProof, BmtTree, EndpointKind
from repro.crypto.encoding import ByteReader

SIZE_BITS = 256
K = 3

block_sets = st.lists(
    st.lists(st.binary(min_size=1, max_size=6), max_size=10),
    min_size=1,
    max_size=16,
).filter(lambda blocks: len(blocks) & (len(blocks) - 1) == 0)


def build_tree(blocks, start=1):
    leaves = [
        (start + i, BloomFilter.from_items(items, SIZE_BITS, K))
        for i, items in enumerate(blocks)
    ]
    return BmtTree.build(leaves)


class TestBmtProperties:
    @given(blocks=block_sets, probe=st.binary(min_size=1, max_size=6))
    @settings(max_examples=80)
    def test_endpoints_partition_range(self, blocks, probe):
        tree = build_tree(blocks)
        endpoints = tree.find_endpoints(probe)
        covered = []
        for endpoint in endpoints:
            covered.extend(range(endpoint.node.start, endpoint.node.end + 1))
        assert covered == list(range(1, len(blocks) + 1))

    @given(blocks=block_sets, probe=st.binary(min_size=1, max_size=6))
    @settings(max_examples=80)
    def test_blocks_containing_item_are_failed_leaves(self, blocks, probe):
        tree = build_tree(blocks)
        endpoints = tree.find_endpoints(probe)
        failed = {
            e.node.start
            for e in endpoints
            if e.kind is EndpointKind.LEAF_FAILED
        }
        for offset, items in enumerate(blocks):
            if probe in items:
                assert offset + 1 in failed

    @given(blocks=block_sets, probe=st.binary(min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_multiproof_verifies_and_partitions(self, blocks, probe):
        tree = build_tree(blocks)
        proof = tree.multiproof(probe)
        verified = proof.verify(
            tree.root.hash, probe, 1, len(blocks), SIZE_BITS, K
        )
        clean = [
            h for s, e in verified.clean_ranges for h in range(s, e + 1)
        ]
        assert sorted(clean + verified.failed_heights) == list(
            range(1, len(blocks) + 1)
        )
        # No block that really contains the probe may be declared clean.
        for offset, items in enumerate(blocks):
            if probe in items:
                assert offset + 1 in verified.failed_heights

    @given(blocks=block_sets, probe=st.binary(min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_multiproof_serialization_roundtrip(self, blocks, probe):
        tree = build_tree(blocks)
        proof = tree.multiproof(probe)
        payload = proof.serialize()
        reader = ByteReader(payload)
        restored = BmtMultiProof.deserialize(reader, SIZE_BITS, K)
        reader.finish()
        assert restored.serialize() == payload
        restored.verify(tree.root.hash, probe, 1, len(blocks), SIZE_BITS, K)

    @given(
        blocks=block_sets.filter(lambda b: len(b) >= 2),
        probe=st.binary(min_size=1, max_size=6),
    )
    @settings(max_examples=40)
    def test_any_block_mutation_changes_root(self, blocks, probe):
        tree = build_tree(blocks)
        mutated = [list(items) for items in blocks]
        mutated[0] = mutated[0] + [b"extra-item"]
        other = build_tree(mutated)
        if other.root.bf != tree.root.bf:
            assert other.root.hash != tree.root.hash

    @given(blocks=block_sets, probe=st.binary(min_size=1, max_size=6))
    @settings(max_examples=40)
    def test_endpoint_count_consistency(self, blocks, probe):
        tree = build_tree(blocks)
        proof = tree.multiproof(probe)
        assert proof.num_endpoints() == len(tree.find_endpoints(probe))
        assert proof.failed_leaf_count() == sum(
            1
            for e in tree.find_endpoints(probe)
            if e.kind is EndpointKind.LEAF_FAILED
        )
