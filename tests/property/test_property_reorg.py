"""Property test: incremental reorg maintenance ≡ fresh build.

Hypothesis drives a random sequence of appends and rollbacks against one
incrementally maintained system while a plain Python list mirrors the
body sequence the chain should now hold.  At every step the incremental
system must be *byte-identical* — headers and a probe's full verifiable
answer — to a system freshly built from the mirrored bodies.  This is
the invariant that makes server-side reorgs safe: no residue of a
discarded fork may survive in the BMT forest, the inverted index, or
the per-block filter/SMT lists.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile

CONFIG = SystemConfig.lvq(bf_bytes=96, segment_len=4)


@pytest.fixture(scope="module")
def body_pool():
    """Two divergent sets of bodies the random walk can draw from."""
    main = generate_workload(
        WorkloadParams(
            num_blocks=8,
            txs_per_block=3,
            seed=81,
            probes=[ProbeProfile("P", 4, 3)],
        )
    )
    alt = generate_workload(
        WorkloadParams(
            num_blocks=8,
            txs_per_block=3,
            seed=82,
            probes=[ProbeProfile("P", 4, 3)],
        )
    )
    pool = main.bodies[1:] + alt.bodies[1:]
    probes = sorted(
        set(main.probe_addresses.values()) | set(alt.probe_addresses.values())
    )
    return main.bodies[0], pool, probes


# An op is ("append", pool_index) or ("rollback", fraction-of-height).
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(min_value=0, max_value=15)),
        st.tuples(st.just("rollback"), st.floats(min_value=0.0, max_value=1.0)),
    ),
    min_size=1,
    max_size=12,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=_OPS)
def test_random_walk_matches_fresh_build(body_pool, ops):
    genesis, pool, probes = body_pool
    system = build_system([genesis], CONFIG)
    mirror = [genesis]
    for kind, value in ops:
        if kind == "append":
            body = pool[value % len(pool)]
            system.append_block(body)
            mirror.append(body)
        else:
            height = int(value * system.tip_height)
            system.rollback_to(height)
            del mirror[height + 1 :]
    fresh = build_system(mirror, CONFIG)
    assert [h.serialize() for h in system.headers()] == [
        h.serialize() for h in fresh.headers()
    ]
    if system.tip_height >= 1:  # queries need at least one non-genesis block
        for address in probes:
            assert answer_query(system, address).serialize(
                CONFIG
            ) == answer_query(fresh, address).serialize(CONFIG)
