"""Property-based round-trip tests for the remaining wire formats."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.transaction import Transaction, TxInput, TxOutput
from repro.crypto.encoding import (
    ByteReader,
    base58_decode,
    base58_encode,
    read_varint,
    write_var_bytes,
    write_varint,
)

addr_text = st.text(
    alphabet=string.digits + string.ascii_letters, min_size=1, max_size=34
)


class TestEncodingRoundtrips:
    @given(value=st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=120)
    def test_varint(self, value):
        encoded = write_varint(value)
        decoded, offset = read_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    @given(payload=st.binary(max_size=64))
    @settings(max_examples=120)
    def test_base58(self, payload):
        assert base58_decode(base58_encode(payload)) == payload

    @given(payload=st.binary(max_size=40))
    @settings(max_examples=80)
    def test_var_bytes(self, payload):
        reader = ByteReader(write_var_bytes(payload))
        assert reader.var_bytes() == payload
        reader.finish()


def tx_inputs():
    return st.builds(
        TxInput,
        prev_txid=st.binary(min_size=32, max_size=32),
        prev_index=st.integers(min_value=0, max_value=2**32 - 1),
        address=addr_text,
        value=st.integers(min_value=0, max_value=2**48),
    )


def tx_outputs():
    return st.builds(
        TxOutput,
        address=addr_text,
        value=st.integers(min_value=0, max_value=2**48),
    )


class TestTransactionRoundtrips:
    @given(
        inputs=st.lists(tx_inputs(), min_size=1, max_size=4),
        outputs=st.lists(tx_outputs(), min_size=1, max_size=4),
        version=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=80)
    def test_roundtrip(self, inputs, outputs, version):
        tx = Transaction(inputs, outputs, version)
        restored = Transaction.from_bytes(tx.serialize())
        assert restored == tx
        assert restored.inputs == tx.inputs
        assert restored.outputs == tx.outputs
        assert restored.txid() == tx.txid()

    @given(
        inputs=st.lists(tx_inputs(), min_size=1, max_size=3),
        outputs=st.lists(tx_outputs(), min_size=1, max_size=3),
    )
    @settings(max_examples=60)
    def test_txid_injective_on_serialization(self, inputs, outputs):
        """Same bytes iff same txid (hash is deterministic)."""
        tx = Transaction(inputs, outputs)
        clone = Transaction.from_bytes(tx.serialize())
        assert clone.serialize() == tx.serialize()
        assert clone.txid() == tx.txid()

    @given(
        inputs=st.lists(tx_inputs(), min_size=1, max_size=3),
        outputs=st.lists(tx_outputs(), min_size=1, max_size=3),
        probe=addr_text,
    )
    @settings(max_examples=80)
    def test_involves_matches_addresses(self, inputs, outputs, probe):
        tx = Transaction(inputs, outputs)
        assert tx.involves(probe) == (probe in tx.addresses())

    @given(
        inputs=st.lists(tx_inputs(), min_size=1, max_size=3),
        outputs=st.lists(tx_outputs(), min_size=1, max_size=3),
        probe=addr_text,
    )
    @settings(max_examples=80)
    def test_equation1_terms_non_negative(self, inputs, outputs, probe):
        tx = Transaction(inputs, outputs)
        assert tx.received_by(probe) >= 0
        assert tx.sent_by(probe) >= 0
        if not tx.involves(probe):
            assert tx.received_by(probe) == 0 and tx.sent_by(probe) == 0
