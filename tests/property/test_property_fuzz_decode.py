"""Deserializer fuzzing: hostile bytes must fail *cleanly*.

A full node's responses are attacker-controlled input, so every decoder
must either return a valid object or raise a :class:`ReproError`
subclass — never an uncontrolled ``IndexError``/``struct.error``/
``MemoryError``.  Two generators: pure random bytes, and random
mutations of valid payloads (which reach much deeper into the parsers).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.crypto.encoding import ByteReader
from repro.errors import ReproError
from repro.merkle.bmt import BmtMultiProof
from repro.merkle.sorted_tree import SmtBranch, SmtInexistenceProof
from repro.merkle.tree import MerkleBranch
from repro.node.messages import (
    HeadersRequest,
    HeadersResponse,
    QueryRequest,
    QueryResponse,
)
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.query.result import QueryResult

CONFIG = SystemConfig.lvq(bf_bytes=192, segment_len=16)


def _decoders():
    return [
        ("transaction", Transaction.from_bytes),
        ("merkle_branch", MerkleBranch.from_bytes),
        (
            "smt_branch",
            lambda raw: SmtBranch.deserialize(ByteReader(raw)),
        ),
        (
            "smt_inexistence",
            lambda raw: SmtInexistenceProof.deserialize(ByteReader(raw)),
        ),
        (
            "bmt_multiproof",
            lambda raw: BmtMultiProof.deserialize(
                ByteReader(raw), CONFIG.bf_bits, CONFIG.num_hashes
            ),
        ),
        (
            "block_header",
            lambda raw: BlockHeader.deserialize(ByteReader(raw), 3),
        ),
        ("query_request", QueryRequest.deserialize),
        ("headers_request", HeadersRequest.deserialize),
        (
            "headers_response",
            lambda raw: HeadersResponse.deserialize(raw, 3),
        ),
        (
            "query_response",
            lambda raw: QueryResponse.deserialize(raw, CONFIG),
        ),
        (
            "query_result",
            lambda raw: QueryResult.deserialize(raw, CONFIG),
        ),
        ("batch_request", _batch_request),
        ("batch_result", _batch_result),
    ]


def _batch_request(raw):
    from repro.node.messages import BatchQueryRequest

    return BatchQueryRequest.deserialize(raw)


def _batch_result(raw):
    from repro.query.batch import BatchQueryResult

    return BatchQueryResult.deserialize(raw, CONFIG)


@pytest.mark.parametrize("name,decoder", _decoders(), ids=lambda d: str(d))
@given(raw=st.binary(max_size=600))
@settings(max_examples=60, deadline=None)
def test_random_bytes_fail_cleanly(name, decoder, raw):
    try:
        decoder(raw)
    except ReproError:
        pass  # the only acceptable failure mode


@given(
    flips=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000_000),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=4,
    )
)
@settings(
    max_examples=80,
    deadline=None,
    # The fixtures are read-only (session-scoped chain); no reset needed.
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_mutated_result_payload_fails_cleanly(
    lvq_system, probe_addresses, flips
):
    honest = answer_query(lvq_system, probe_addresses["Addr5"])
    payload = bytearray(honest.serialize(lvq_system.config))
    for position, bit in flips:
        payload[position % len(payload)] ^= 1 << bit
    try:
        result = QueryResult.deserialize(bytes(payload), lvq_system.config)
        # If it parsed, verification must also fail cleanly or accept an
        # identical answer — never crash.
        from repro.query.verifier import verify_result

        verify_result(result, lvq_system.headers(), lvq_system.config)
    except ReproError:
        pass
