"""Property-based tests for the Sorted Merkle Tree.

The central invariant: for ANY leaf population and ANY queried address,
the SMT yields exactly one of (a) an existence branch carrying the true
count, or (b) an inexistence proof that verifies for that address and for
no address present in the tree.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VerificationError
from repro.merkle.sorted_tree import SortedMerkleTree

# Address-like strings: Base58-ish alphabet keeps us under the sentinel.
addr_alphabet = string.digits + string.ascii_letters
addresses = st.text(alphabet=addr_alphabet, min_size=1, max_size=12)
populations = st.dictionaries(
    addresses, st.integers(min_value=1, max_value=50), max_size=25
)


class TestSmtProperties:
    @given(population=populations)
    @settings(max_examples=60)
    def test_every_member_has_existence_proof(self, population):
        tree = SortedMerkleTree.from_counts(population)
        for address, count in population.items():
            branch = tree.prove_existence(address)
            assert branch.verify(tree.root)
            assert branch.leaf.count == count

    @given(population=populations, probe=addresses)
    @settings(max_examples=100)
    def test_membership_dichotomy(self, population, probe):
        tree = SortedMerkleTree.from_counts(population)
        if probe in population:
            branch = tree.prove_existence(probe)
            assert branch.verify(tree.root)
        else:
            proof = tree.prove_inexistence(probe)
            proof.verify(tree.root, probe)  # must not raise

    @given(population=populations.filter(lambda p: len(p) >= 1), probe=addresses)
    @settings(max_examples=100)
    def test_inexistence_proof_not_transferable_to_members(
        self, population, probe
    ):
        if probe in population:
            return
        tree = SortedMerkleTree.from_counts(population)
        proof = tree.prove_inexistence(probe)
        for member in population:
            try:
                proof.verify(tree.root, member)
                assert False, (
                    f"inexistence proof for {probe!r} also verified for "
                    f"member {member!r}"
                )
            except VerificationError:
                pass

    @given(population=populations)
    @settings(max_examples=60)
    def test_root_independent_of_insertion_order(self, population):
        tree_a = SortedMerkleTree.from_counts(population)
        reordered = dict(reversed(list(population.items())))
        tree_b = SortedMerkleTree.from_counts(reordered)
        assert tree_a.root == tree_b.root

    @given(population=populations.filter(lambda p: len(p) >= 1))
    @settings(max_examples=60)
    def test_count_change_changes_root(self, population):
        tree = SortedMerkleTree.from_counts(population)
        mutated = dict(population)
        first = next(iter(mutated))
        mutated[first] += 1
        assert SortedMerkleTree.from_counts(mutated).root != tree.root

    @given(population=populations)
    @settings(max_examples=60)
    def test_padding_invariants(self, population):
        tree = SortedMerkleTree.from_counts(population)
        slots = tree.num_leaves
        assert slots & (slots - 1) == 0
        assert tree.num_real_leaves == len(population)
        assert slots >= max(1, len(population))
