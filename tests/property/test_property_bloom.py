"""Property-based tests for Bloom filters and bit arrays."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.bitarray import BitArray
from repro.bloom.filter import BloomFilter, bloom_positions

items_strategy = st.lists(st.binary(min_size=1, max_size=24), max_size=40)
geometry = st.tuples(
    st.integers(min_value=1, max_value=32).map(lambda w: w * 8),
    st.integers(min_value=1, max_value=8),
)


class TestBloomProperties:
    @given(items=items_strategy, geom=geometry)
    @settings(max_examples=60)
    def test_no_false_negatives(self, items, geom):
        size_bits, k = geom
        bloom = BloomFilter.from_items(items, size_bits, k)
        assert all(item in bloom for item in items)

    @given(items=items_strategy, geom=geometry)
    @settings(max_examples=40)
    def test_serialization_roundtrip(self, items, geom):
        size_bits, k = geom
        bloom = BloomFilter.from_items(items, size_bits, k)
        restored = BloomFilter.from_bytes(bloom.to_bytes(), k)
        assert restored == bloom

    @given(
        left=items_strategy,
        right=items_strategy,
        geom=geometry,
        probe=st.binary(min_size=1, max_size=24),
    )
    @settings(max_examples=60)
    def test_union_superset(self, left, right, geom, probe):
        """x in A or x in B  =>  x in (A|B); and fill only grows."""
        size_bits, k = geom
        a = BloomFilter.from_items(left, size_bits, k)
        b = BloomFilter.from_items(right, size_bits, k)
        merged = a | b
        if probe in a or probe in b:
            assert probe in merged
        assert a.bits.is_subset_of(merged.bits)
        assert b.bits.is_subset_of(merged.bits)

    @given(items=items_strategy, geom=geometry)
    @settings(max_examples=40)
    def test_union_idempotent(self, items, geom):
        size_bits, k = geom
        bloom = BloomFilter.from_items(items, size_bits, k)
        assert (bloom | bloom).bits == bloom.bits

    @given(
        item=st.binary(min_size=1, max_size=64),
        geom=geometry,
    )
    @settings(max_examples=60)
    def test_positions_stable_and_bounded(self, item, geom):
        size_bits, k = geom
        positions = bloom_positions(item, k, size_bits)
        assert positions == bloom_positions(item, k, size_bits)
        assert len(positions) == k
        assert all(0 <= p < size_bits for p in positions)


class TestBitArrayProperties:
    @given(
        indices=st.lists(
            st.integers(min_value=0, max_value=127), max_size=50
        )
    )
    @settings(max_examples=60)
    def test_roundtrip(self, indices):
        bits = BitArray(128)
        for index in indices:
            bits.set(index)
        assert BitArray.from_bytes(bits.to_bytes()) == bits
        assert bits.popcount() == len(set(indices))

    @given(
        a_indices=st.lists(st.integers(min_value=0, max_value=63), max_size=30),
        b_indices=st.lists(st.integers(min_value=0, max_value=63), max_size=30),
    )
    @settings(max_examples=60)
    def test_or_is_set_union(self, a_indices, b_indices):
        a = BitArray(64)
        b = BitArray(64)
        for index in a_indices:
            a.set(index)
        for index in b_indices:
            b.set(index)
        merged = a | b
        expected = set(a_indices) | set(b_indices)
        assert {i for i in range(64) if merged.get(i)} == expected
