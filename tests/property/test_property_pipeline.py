"""Property-based end-to-end pipeline tests.

For randomly shaped miniature workloads, arbitrary system configs, and
arbitrary query ranges, verified histories must equal the ground truth —
the strongest statement of correctness + completeness the library makes.
Chain sizes are kept tiny so hypothesis can explore many shapes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.builder import build_system
from repro.query.config import SystemConfig, SystemKind
from repro.query.prover import answer_query
from repro.query.verifier import verify_result
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile

_WORKLOAD_CACHE = {}


def _workload(num_blocks, seed):
    key = (num_blocks, seed)
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = generate_workload(
            WorkloadParams(
                num_blocks=num_blocks,
                txs_per_block=5,
                seed=seed,
                probes=[
                    ProbeProfile("Zero", 0, 0),
                    ProbeProfile("Few", min(3, num_blocks), min(2, num_blocks)),
                ],
            )
        )
    return _WORKLOAD_CACHE[key]


def _config(kind, bf_bytes, segment_len):
    if kind is SystemKind.LVQ:
        return SystemConfig.lvq(bf_bytes=bf_bytes, segment_len=segment_len)
    if kind is SystemKind.LVQ_NO_SMT:
        return SystemConfig.lvq_no_smt(
            bf_bytes=bf_bytes, segment_len=segment_len
        )
    if kind is SystemKind.LVQ_NO_BMT:
        return SystemConfig.lvq_no_bmt(bf_bytes=bf_bytes)
    return SystemConfig.strawman(bf_bytes=bf_bytes)


@given(
    num_blocks=st.integers(min_value=2, max_value=14),
    seed=st.integers(min_value=1, max_value=4),
    kind=st.sampled_from(
        [
            SystemKind.STRAWMAN,
            SystemKind.LVQ_NO_BMT,
            SystemKind.LVQ_NO_SMT,
            SystemKind.LVQ,
        ]
    ),
    bf_bytes=st.sampled_from([8, 32, 128]),
    segment_exp=st.integers(min_value=0, max_value=4),
    probe=st.sampled_from(["Zero", "Few"]),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_verified_history_equals_truth(
    num_blocks, seed, kind, bf_bytes, segment_exp, probe, data
):
    workload = _workload(num_blocks, seed)
    config = _config(kind, bf_bytes, 1 << segment_exp)
    system = build_system(workload.bodies, config)
    headers = system.headers()
    address = workload.probe_addresses[probe]

    first = data.draw(
        st.integers(min_value=1, max_value=num_blocks), label="first"
    )
    last = data.draw(
        st.integers(min_value=first, max_value=num_blocks), label="last"
    )

    result = answer_query(system, address, first, last)
    # The wire round-trip must not change anything.
    from repro.query.result import QueryResult

    restored = QueryResult.deserialize(result.serialize(config), config)
    history = verify_result(restored, headers, config, address, (first, last))

    truth = [
        (h, tx.txid())
        for h, tx in workload.history_of(address)
        if first <= h <= last
    ]
    assert [(h, tx.txid()) for h, tx in history.transactions] == truth
