"""Property-based tests for Algorithm 1 and the segment decomposition.

These invariants are what the whole LVQ proof system hangs on: if the
prover and verifier ever disagreed about which BMT covers which blocks,
completeness would silently break.  Hypothesis sweeps tips and segment
lengths far beyond the paper's examples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.segments import (
    covering_spans,
    is_anchor_for,
    merge_span,
    segment_spans,
)

segment_lens = st.integers(min_value=0, max_value=12).map(lambda e: 1 << e)


class TestMergeSpanProperties:
    @given(height=st.integers(min_value=1, max_value=100_000), m=segment_lens)
    @settings(max_examples=200)
    def test_span_shape(self, height, m):
        start, end = merge_span(height, m)
        size = end - start + 1
        assert end == height
        assert size & (size - 1) == 0  # power of two
        assert size <= m
        position = height % m or m
        assert position % size == 0  # size divides the in-segment position

    @given(height=st.integers(min_value=1, max_value=100_000), m=segment_lens)
    @settings(max_examples=200)
    def test_span_never_crosses_segment_boundary(self, height, m):
        start, end = merge_span(height, m)
        # All merged blocks lie in the same M-segment.
        assert (start - 1) // m == (end - 1) // m

    @given(height=st.integers(min_value=1, max_value=100_000), m=segment_lens)
    @settings(max_examples=200)
    def test_maximality(self, height, m):
        """Algorithm 1 picks the *largest* qualifying power of two."""
        start, end = merge_span(height, m)
        size = end - start + 1
        bigger = size * 2
        position = height % m or m
        if bigger <= m:
            assert position % bigger != 0 or bigger > position


class TestSegmentSpanProperties:
    @given(tip=st.integers(min_value=0, max_value=20_000), m=segment_lens)
    @settings(max_examples=200)
    def test_partition(self, tip, m):
        spans = segment_spans(tip, m)
        covered = [h for start, end in spans for h in range(start, end + 1)]
        assert covered == list(range(1, tip + 1))

    @given(tip=st.integers(min_value=1, max_value=20_000), m=segment_lens)
    @settings(max_examples=200)
    def test_each_span_has_a_valid_anchor(self, tip, m):
        for anchor, start, end in covering_spans(tip, m):
            assert anchor == end <= tip
            assert is_anchor_for(anchor, start, end, m)

    @given(tip=st.integers(min_value=1, max_value=20_000), m=segment_lens)
    @settings(max_examples=200)
    def test_span_sizes_complete_then_descending(self, tip, m):
        sizes = [end - start + 1 for start, end in segment_spans(tip, m)]
        tail_started = False
        previous_tail = None
        for size in sizes:
            if size == m and not tail_started:
                continue  # complete segments first
            tail_started = True
            assert size < m or sizes.count(m) * m == tip
            if previous_tail is not None:
                assert size < previous_tail  # strictly descending powers
            previous_tail = size

    @given(tip=st.integers(min_value=1, max_value=20_000), m=segment_lens)
    @settings(max_examples=100)
    def test_prover_verifier_agreement(self, tip, m):
        """Both sides derive the same covering from (tip, M) alone."""
        assert covering_spans(tip, m) == covering_spans(tip, m)
        spans = segment_spans(tip, m)
        assert [(s, e) for _a, s, e in covering_spans(tip, m)] == spans
