"""Property-based tests for Merkle trees and branches."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import sha256
from repro.merkle.tree import MerkleBranch, MerkleTree

leaf_lists = st.lists(
    st.binary(min_size=1, max_size=8).map(sha256), min_size=1, max_size=40
)


class TestMerkleProperties:
    @given(leaves=leaf_lists, data=st.data())
    @settings(max_examples=60)
    def test_every_branch_verifies(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        branch = tree.branch(index)
        assert branch.verify(tree.root)
        assert branch.leaf_hash == leaves[index]

    @given(leaves=leaf_lists, data=st.data())
    @settings(max_examples=60)
    def test_tampered_leaf_never_verifies(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        branch = tree.branch(index)
        forged_leaf = sha256(branch.leaf_hash)  # guaranteed different
        forged = MerkleBranch(forged_leaf, branch.leaf_index, branch.siblings)
        assert not forged.verify(tree.root)

    @given(leaves=leaf_lists, data=st.data())
    @settings(max_examples=60)
    def test_branch_serialization_roundtrip(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        branch = tree.branch(index)
        restored = MerkleBranch.from_bytes(branch.serialize())
        assert restored == branch
        assert restored.verify(tree.root)

    @given(leaves=leaf_lists)
    @settings(max_examples=60)
    def test_root_deterministic(self, leaves):
        assert MerkleTree(leaves).root == MerkleTree(leaves).root

    @given(leaves=leaf_lists, data=st.data())
    @settings(max_examples=60)
    def test_any_leaf_change_changes_root(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        mutated = list(leaves)
        mutated[index] = sha256(mutated[index])
        assert MerkleTree(mutated).root != tree.root

    @given(
        leaves=st.lists(
            st.binary(min_size=1, max_size=8).map(sha256),
            min_size=2,
            max_size=40,
            unique=True,
        ),
        data=st.data(),
    )
    @settings(max_examples=60)
    def test_distinct_leaves_distinct_branches(self, leaves, data):
        tree = MerkleTree(leaves)
        i = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        j = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        if i == j:
            return
        assert tree.branch(i).leaf_index != tree.branch(j).leaf_index
