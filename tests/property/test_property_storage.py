"""Property test: on-disk corruption is always detected at load time.

Random byte flips in any of the three chain-store files must make
``load_system`` raise — never silently load a different chain.  (A flip
could in principle leave the files byte-identical in meaning only by a
hash collision.)
"""

import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.storage.chain_store import load_system, save_system
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import ProbeProfile


@pytest.fixture(scope="module")
def stored_chain(tmp_path_factory):
    workload = generate_workload(
        WorkloadParams(
            num_blocks=8,
            txs_per_block=4,
            seed=21,
            probes=[ProbeProfile("P", 2, 2)],
        )
    )
    system = build_system(
        workload.bodies, SystemConfig.lvq(bf_bytes=96, segment_len=8)
    )
    directory = tmp_path_factory.mktemp("chain-store") / "chain"
    save_system(system, directory)
    originals = {
        name: (directory / name).read_bytes()
        for name in ("bodies.dat", "headers.dat", "manifest.json")
    }
    return system, directory, originals


@given(
    target=st.sampled_from(["bodies.dat", "headers.dat", "manifest.json"]),
    position=st.integers(min_value=0, max_value=10_000_000),
    bit=st.integers(min_value=0, max_value=7),
)
@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_any_flip_detected_or_harmless(stored_chain, target, position, bit):
    system, directory, originals = stored_chain
    raw = bytearray(originals[target])
    raw[position % len(raw)] ^= 1 << bit
    try:
        for name, payload in originals.items():
            (directory / name).write_bytes(
                bytes(raw) if name == target else payload
            )
        try:
            loaded = load_system(directory)
        except ReproError:
            return  # detected — the required outcome for meaningful flips
        except ValueError:
            return  # manifest JSON-level damage surfaces as a parse error
        # Accepted: the chain must be byte-identical to the original
        # (e.g. the flip hit JSON whitespace in the manifest).
        assert loaded.headers()[-1].block_id() == (
            system.headers()[-1].block_id()
        )
    finally:
        for name, payload in originals.items():
            (directory / name).write_bytes(payload)
