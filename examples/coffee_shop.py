#!/usr/bin/env python3
"""The paper's §I scenario: a coffee-shop merchant on a phone-class node.

A customer offers to pay from an address.  The merchant's light node asks
a full node for that address's verifiable history and computes the
balance with Equation 1.  We then replay the exact same query against a
set of *dishonest* full nodes — each running one of the attacks from the
§VI security analysis — and show that every manipulated answer is
rejected with a precise reason, so the merchant can never be shown a
fake balance.

Run:  python examples/coffee_shop.py
"""

from repro import (
    FullNode,
    LightNode,
    SystemConfig,
    VerificationError,
    WorkloadParams,
    build_system,
    generate_workload,
)
from repro.query.adversary import ALL_ATTACKS, MaliciousFullNode

NUM_BLOCKS = 96


def main() -> None:
    workload = generate_workload(
        WorkloadParams(num_blocks=NUM_BLOCKS, txs_per_block=16, seed=2020)
    )
    config = SystemConfig.lvq(bf_bytes=448, segment_len=32)
    system = build_system(workload.bodies, config)

    honest_node = FullNode(system)
    merchant = LightNode.from_full_node(honest_node)

    customer = workload.probe_addresses["Addr5"]  # a busy customer
    price = 200

    print("-- the honest case ------------------------------------------")
    balance = merchant.query_balance(honest_node, customer)
    print(f"Customer {customer[:12]}… has a verified balance of {balance:,}.")
    verdict = "accept" if balance >= price else "decline"
    print(f"Coffee costs {price}; the merchant should {verdict} the payment.")

    print("\n-- dishonest full nodes --------------------------------------")
    for attack_name, attack in sorted(ALL_ATTACKS.items()):
        liar = MaliciousFullNode(system, attack)
        try:
            forged_balance = merchant.query_balance(liar, customer)
        except VerificationError as reason:
            outcome = f"REJECTED — {str(reason)[:70]}"
        else:
            if liar.last_attack_applied:
                outcome = f"ACCEPTED A LIE (balance {forged_balance:,})"
            else:
                outcome = "attack was a no-op for this address; answer honest"
        print(f"{attack_name:28s} {outcome}")

    print(
        "\nEvery attack that actually modified the response was rejected; "
        "the merchant's balance check cannot be spoofed."
    )


if __name__ == "__main__":
    main()
