#!/usr/bin/env python3
"""Quickstart: build a chain, run one verifiable query, check the proofs.

This walks the whole LVQ pipeline in ~60 lines:

1. generate a deterministic synthetic Bitcoin workload (the offline
   substitute for mainnet blocks — see DESIGN.md §2);
2. build an LVQ chain: every header carries a BMT root and an SMT root;
3. run a full node and a header-only light node;
4. query one address's history and verify correctness + completeness;
5. compute its Equation-1 balance from the verified history.

Run:  python examples/quickstart.py
"""

from repro import (
    FullNode,
    InProcessTransport,
    LightNode,
    SystemConfig,
    WorkloadParams,
    build_system,
    generate_workload,
)

NUM_BLOCKS = 128
SEGMENT_LEN = 64  # the paper's M: last block of each segment merges it


def main() -> None:
    print(f"Generating a {NUM_BLOCKS}-block synthetic chain...")
    workload = generate_workload(
        WorkloadParams(num_blocks=NUM_BLOCKS, txs_per_block=20, seed=7)
    )

    print("Building the LVQ chain (BMT + SMT commitments in every header)...")
    config = SystemConfig.lvq(bf_bytes=512, segment_len=SEGMENT_LEN)
    system = build_system(workload.bodies, config)

    full_node = FullNode(system)
    light_node = LightNode.from_full_node(full_node)
    print(
        f"Light node stores {light_node.storage_bytes():,} bytes of headers "
        f"({light_node.tip_height} blocks x "
        f"{light_node.headers[1].size_bytes()}B)."
    )

    # Query the Table-III-style probe with a moderate history.
    address = workload.probe_addresses["Addr4"]
    print(f"\nQuerying history of {address} ...")
    transport = InProcessTransport()
    history = light_node.query_history(full_node, address, transport)

    print(f"Verified {len(history.transactions)} transactions in "
          f"{len(history.heights())} blocks.")
    print(f"Verified balance (Equation 1): {history.balance():,} units")
    print(f"BMT endpoint nodes in the proof: {history.num_endpoints}")
    print(f"Bytes over the wire: {transport.stats.total_bytes:,} "
          f"(response {transport.stats.bytes_to_client:,})")

    # Cross-check against ground truth available only in this script.
    truth = workload.history_of(address)
    assert [(h, t.txid()) for h, t in history.transactions] == [
        (h, t.txid()) for h, t in truth
    ]
    print("\nGround-truth cross-check passed: the verified history is the "
          "complete on-chain history.")


if __name__ == "__main__":
    main()
