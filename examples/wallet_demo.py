#!/usr/bin/env python3
"""A watch-only wallet session: batch refresh, chain growth, persistence.

Puts the adoption-facing API together: a :class:`repro.Wallet` watches
several addresses, refreshes all of them in one verified batch message,
follows the chain as the full node mines new blocks, survives a restart
from disk, and refuses to display anything a lying full node says.

Run:  python examples/wallet_demo.py
"""

import tempfile

from repro import (
    FullNode,
    LightNode,
    SystemConfig,
    VerificationError,
    Wallet,
    WorkloadParams,
    build_system,
    generate_workload,
)
from repro.analysis.report import render_table
from repro.query.adversary import MaliciousFullNode, omit_one_transaction

NUM_BLOCKS = 160


def main() -> None:
    workload = generate_workload(
        WorkloadParams(num_blocks=NUM_BLOCKS, txs_per_block=14, seed=77)
    )
    config = SystemConfig.lvq(bf_bytes=448, segment_len=32)

    # The full node starts 16 blocks behind the generated tip, so it can
    # "mine" the rest live.
    system = build_system(workload.bodies[: NUM_BLOCKS - 15], config)
    full_node = FullNode(system)

    wallet = Wallet(
        LightNode.from_full_node(full_node),
        [workload.probe_addresses[name] for name in ("Addr2", "Addr4", "Addr6")],
    )
    wallet.refresh(full_node)

    def balance_rows():
        return [
            [address[:16] + "…", f"{balance:,}"]
            for address, balance in wallet.balances().items()
        ]

    print(f"-- wallet at height {wallet.light_node.tip_height} --")
    print(render_table(["Address", "Verified balance"], balance_rows()))
    print(f"Total: {wallet.total_balance():,}\n")

    print("Mining 16 more blocks on the full node...")
    full_node.extend_chain(workload.bodies[NUM_BLOCKS - 15 :])
    replaced, appended = wallet.sync(full_node)
    print(
        f"Wallet synced: +{appended} headers (replaced {replaced}); "
        f"now at height {wallet.light_node.tip_height}."
    )
    print(render_table(["Address", "Verified balance"], balance_rows()))
    print(f"Total: {wallet.total_balance():,}\n")

    with tempfile.TemporaryDirectory() as tmp:
        wallet.save(tmp)
        restored = Wallet.load(tmp)
        restored.refresh(full_node)
        assert restored.balances() == wallet.balances()
        print(f"Wallet persisted and restored from {tmp}: balances match.\n")

    liar = MaliciousFullNode(system, omit_one_transaction)
    try:
        wallet.refresh(liar)
    except VerificationError as reason:
        print(f"Lying full node rejected: {str(reason)[:75]}")
        print("Wallet state untouched — balances still the verified ones.")


if __name__ == "__main__":
    main()
