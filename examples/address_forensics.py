#!/usr/bin/env python3
"""Behaviour analysis over *verified* histories (§II-B's second use case).

The paper motivates verifiable history queries with address analysis:
"by analyzing the transaction history, we can possibly conclude some
behavior patterns of an address and further deduce its real-world
identity, such as exchange or mining pool".

This example queries every Table-III-style probe through the verified
path, derives simple behavioural features from the proven histories —
activity span, transactions per active block, flow direction, turnover —
and classifies each address.  Because every input history is verified
complete, the classification cannot be skewed by a full node hiding or
injecting transactions.

Run:  python examples/address_forensics.py
"""

from repro import (
    FullNode,
    LightNode,
    SystemConfig,
    WorkloadParams,
    build_system,
    generate_workload,
)
from repro.analysis.report import render_table

NUM_BLOCKS = 256


def classify(features: dict) -> str:
    """A deliberately simple rule set over verified features."""
    if features["tx_count"] == 0:
        return "unused"
    if features["tx_count"] == 1:
        return "one-shot"
    if features["tx_per_block"] >= 2.0 and features["turnover"] > 0.5:
        return "exchange-like (busy, high turnover)"
    if features["received"] > 0 and features["sent"] == 0:
        return "accumulator (cold storage?)"
    if features["tx_count"] >= 20:
        return "service (sustained activity)"
    return "personal wallet"


def main() -> None:
    workload = generate_workload(
        WorkloadParams(num_blocks=NUM_BLOCKS, txs_per_block=16, seed=99)
    )
    config = SystemConfig.lvq(bf_bytes=448, segment_len=128)
    system = build_system(workload.bodies, config)
    full_node = FullNode(system)
    analyst = LightNode.from_full_node(full_node)

    rows = []
    for name, address in workload.probe_addresses.items():
        history = analyst.query_history(full_node, address)
        heights = history.heights()
        received = sum(tx.received_by(address) for _h, tx in history.transactions)
        sent = sum(tx.sent_by(address) for _h, tx in history.transactions)
        features = {
            "tx_count": len(history.transactions),
            "blocks": len(heights),
            "span": (heights[-1] - heights[0] + 1) if heights else 0,
            "tx_per_block": (
                len(history.transactions) / len(heights) if heights else 0.0
            ),
            "received": received,
            "sent": sent,
            "turnover": sent / received if received else 0.0,
        }
        rows.append(
            [
                name,
                features["tx_count"],
                features["blocks"],
                features["span"],
                f"{features['tx_per_block']:.2f}",
                f"{features['turnover']:.2f}",
                history.balance(),
                classify(features),
            ]
        )

    print(
        render_table(
            [
                "Probe",
                "#Tx",
                "#Blocks",
                "Span",
                "Tx/Block",
                "Turnover",
                "Balance",
                "Classification",
            ],
            rows,
        )
    )
    print(
        "\nEvery feature above is derived from a history whose completeness "
        "was cryptographically verified — a malicious full node cannot bias "
        "the classification by omitting or inventing transactions."
    )


if __name__ == "__main__":
    main()
