#!/usr/bin/env python3
"""Range queries: audit an address over a specific block window.

An auditor wants provable answers to "what did this address do between
heights A and B?" — e.g. around a known incident — without paying for the
whole chain's proof.  The range-query extension (DESIGN.md §5) restricts
the BMT multiproofs: subtrees outside the window ship as (hash, filter)
stubs, so the cost scales with the window, not the chain, while
completeness over the window remains fully verifiable.

Run:  python examples/audit_window.py
"""

from repro import (
    FullNode,
    InProcessTransport,
    LightNode,
    SystemConfig,
    WorkloadParams,
    build_system,
    generate_workload,
)
from repro.analysis.report import format_bytes, render_table

NUM_BLOCKS = 512


def main() -> None:
    workload = generate_workload(
        WorkloadParams(num_blocks=NUM_BLOCKS, txs_per_block=16, seed=1234)
    )
    config = SystemConfig.lvq(bf_bytes=768, segment_len=NUM_BLOCKS)
    system = build_system(workload.bodies, config)
    full_node = FullNode(system)
    auditor = LightNode.from_full_node(full_node)

    suspect = workload.probe_addresses["Addr5"]
    active = sorted(
        {height for height, _tx in workload.history_of(suspect)}
    )
    incident = active[len(active) // 2]
    window = (max(1, incident - 32), min(NUM_BLOCKS, incident + 32))

    print(f"Suspect address : {suspect}")
    print(f"Incident height : {incident}")
    print(f"Audit window    : blocks {window[0]}..{window[1]}\n")

    rows = []
    for label, (first, last) in (
        ("audit window", window),
        ("whole chain", (1, NUM_BLOCKS)),
    ):
        transport = InProcessTransport()
        history = auditor.query_history(
            full_node,
            suspect,
            transport,
            first_height=first,
            last_height=last,
        )
        net_flow = history.balance()
        rows.append(
            [
                label,
                f"{first}..{last}",
                len(history.transactions),
                f"{net_flow:+,}",
                format_bytes(transport.stats.bytes_to_client),
            ]
        )

    print(
        render_table(
            ["Query", "Heights", "#Tx", "Net flow", "Proof size"], rows
        )
    )
    window_bytes = rows[0][-1]
    full_bytes = rows[1][-1]
    print(
        f"\nThe windowed proof ({window_bytes}) is a fraction of the "
        f"whole-chain proof ({full_bytes}), yet the auditor has a "
        "cryptographic guarantee that *no* transaction of the suspect "
        "inside the window was withheld."
    )

    # Negative control: the auditor asked for the window but the prover
    # answers a narrower slice — verification must fail.
    from repro.errors import VerificationError
    from repro.query.prover import answer_query

    narrower = answer_query(system, suspect, window[0] + 8, window[1] - 8)
    try:
        auditor.verify(narrower, suspect, expected_range=window)
    except VerificationError as reason:
        print(f"\nNarrowed answer rejected as expected: {reason}")


if __name__ == "__main__":
    main()
