#!/usr/bin/env python3
"""A miniature Fig 12: result sizes across the four §VII-B prototypes.

Builds the same chain under all four systems — strawman, LVQ-no-BMT,
LVQ-no-SMT, and LVQ — runs the six probe queries over the byte-counting
transport, and prints who pays how much.  With a larger chain
(``--blocks 1024``) the ordering converges to the paper's Fig 12.

Run:  python examples/bandwidth_comparison.py [--blocks N]
"""

import argparse

from repro import (
    FullNode,
    InProcessTransport,
    LightNode,
    SystemConfig,
    WorkloadParams,
    build_system,
    generate_workload,
)
from repro.analysis.report import format_bytes, render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=256)
    args = parser.parse_args()

    workload = generate_workload(
        WorkloadParams(num_blocks=args.blocks, txs_per_block=20, seed=2020)
    )
    configs = {
        "strawman": SystemConfig.strawman(bf_bytes=256),
        "lvq_no_bmt": SystemConfig.lvq_no_bmt(bf_bytes=256),
        "lvq_no_smt": SystemConfig.lvq_no_smt(
            bf_bytes=768, segment_len=args.blocks
        ),
        "lvq": SystemConfig.lvq(bf_bytes=768, segment_len=args.blocks),
    }

    sizes = {}
    storage = {}
    for label, config in configs.items():
        system = build_system(workload.bodies, config)
        full_node = FullNode(system)
        light_node = LightNode.from_full_node(full_node)
        storage[label] = light_node.storage_bytes()
        sizes[label] = {}
        for name, address in workload.probe_addresses.items():
            transport = InProcessTransport()
            light_node.query_history(full_node, address, transport)
            sizes[label][name] = transport.stats.bytes_to_client

    rows = []
    for name in workload.probe_addresses:
        rows.append(
            [name] + [format_bytes(sizes[label][name]) for label in configs]
        )
    print(f"Verified-query response size over {args.blocks} blocks:\n")
    print(render_table(["Address", *configs.keys()], rows))

    print("\nLight-node header storage:")
    print(
        render_table(
            ["System", "Total", "Per block"],
            [
                [
                    label,
                    format_bytes(storage[label]),
                    f"{storage[label] // (args.blocks + 1)}B",
                ]
                for label in configs
            ],
        )
    )
    lvq = sizes["lvq"]["Addr1"]
    straw = sizes["strawman"]["Addr1"]
    print(
        f"\nFor the inexistent address, LVQ ships {format_bytes(lvq)} vs the "
        f"strawman's {format_bytes(straw)} — {lvq / straw:.1%} of the cost "
        f"(the paper reports 1.39% at full 4096-block scale)."
    )


if __name__ == "__main__":
    main()
