"""Ablation: Fig-12 result sizes translated to link transfer times.

The paper argues "lightweight" in bytes; this bench converts the same
measurements into estimated wall-clock transfer times on two reference
links (home broadband and 3G), which is what the coffee-shop scenario of
§I actually experiences while the customer waits.
"""

from _common import fig12_configs, write_report

from repro.analysis.report import render_table
from repro.node.transport import LinkModel

LINKS = {
    "broadband": LinkModel.home_broadband(),
    "3g": LinkModel.mobile_3g(),
}


def test_ablation_link_latency(benchmark, bench_workload, cache):
    configs = fig12_configs()
    probes = ("Addr1", "Addr6")
    rows = []
    times = {}
    for label, config in configs.items():
        for probe in probes:
            address = bench_workload.probe_addresses[probe]
            size = cache.result(config, address).size_bytes(config)
            row = [label, probe, f"{size:,}B"]
            for link_name, link in LINKS.items():
                seconds = link.transfer_seconds(size)
                times[(label, probe, link_name)] = seconds
                row.append(f"{seconds * 1000:.0f}ms")
            rows.append(row)

    text = render_table(
        ["System", "Address", "Bytes", *LINKS.keys()], rows
    )
    write_report("ablation_link_latency", text)

    # The coffee-shop wait: on 3G, LVQ answers the inexistent-address
    # query several times faster than the strawman.
    assert (
        times[("lvq", "Addr1", "3g")] * 3
        < times[("strawman", "Addr1", "3g")]
    )
    # And every LVQ answer at this scale stays interactive on broadband.
    assert times[("lvq", "Addr6", "broadband")] < 5.0

    link = LINKS["3g"]
    benchmark(lambda: link.transfer_seconds(1_000_000))
