"""Concurrent serving benchmark: pooled worker server vs serial baseline.

Drives a Zipf-skewed address workload (a few hot addresses dominate, a
long tail of cold ones — mainnet's address-popularity shape) from N
concurrent client threads against :class:`repro.node.server.QueryServer`
and compares three serving modes over the same request sequence:

* ``serial_nocache`` — one thread, every cache cleared before every
  request: the cost of serving with no caching layer at all;
* ``serial_warm``    — one thread, caches left to warm: PR 1's memos
  plus this PR's response-byte cache, but no worker pool;
* ``pooled_warm``    — the full engine: worker pool, bounded queue,
  single-flight response cache, N concurrent clients.

Reported per mode: QPS, p50/p99/mean client-observed latency, and the
cache hit/miss/coalescing counters.  The **gate** (committed to
``BENCH_serving.json`` and enforced at paper-ish scale): the pooled warm
server must beat the serial no-cache baseline by ≥ 3× QPS with ≥ 8
concurrent clients; at any scale it must at least match it (the CI
smoke assertion).

The report also carries a ``build`` equivalence block: ``build_system``
with a chunked worker pool must produce byte-identical headers to the
sequential build (and its wall-clock is recorded — on a single-core
container the pool is overhead, which the JSON shows honestly).

Run: ``PYTHONPATH=src python benchmarks/bench_serving.py``
(small CI smoke: ``LVQ_SERVING_BLOCKS=48 LVQ_SERVING_REQUESTS=300``).
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _common import NUM_HASHES, bf_bytes
from repro.node.full_node import FullNode
from repro.node.messages import QueryRequest
from repro.node.server import QueryServer
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.workload.generator import WorkloadParams, generate_workload

BLOCKS = int(os.environ.get("LVQ_SERVING_BLOCKS", "256"))
TXS = int(os.environ.get("LVQ_SERVING_TXS", "40"))
CLIENTS = int(os.environ.get("LVQ_SERVING_CLIENTS", "8"))
WORKERS = int(os.environ.get("LVQ_SERVING_WORKERS", "8"))
REQUESTS = int(os.environ.get("LVQ_SERVING_REQUESTS", "2000"))
#: The serial no-cache mode re-proves everything per request; cap its
#: sample so the baseline doesn't dominate bench wall-clock.
NOCACHE_REQUESTS = int(os.environ.get("LVQ_SERVING_NOCACHE_REQUESTS", "150"))
ZIPF_S = float(os.environ.get("LVQ_SERVING_ZIPF", "1.1"))
POPULATION = int(os.environ.get("LVQ_SERVING_POPULATION", "64"))
SEED = 2020

#: Gate: pooled warm QPS vs serial no-cache QPS.
REQUIRED_SPEEDUP = 3.0
#: The 3x gate arms at this scale; below it only >= 1x is required.
GATE_MIN_BLOCKS = 256
GATE_MIN_CLIENTS = 8

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serving.json"


def _zipf_requests(addresses, count: int, seed: int):
    """A Zipf(s)-popular request sequence over ``addresses`` by rank."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(addresses))]
    return rng.choices(addresses, weights=weights, k=count)


def _address_population(workload, size: int):
    """Probe addresses first (the designated hot ranks), then background
    addresses in first-seen order until ``size`` distinct entries."""
    population = list(workload.probe_addresses.values())
    seen = set(population)
    for body in workload.bodies[1:]:
        for transaction in body:
            for address in sorted(transaction.addresses()):
                if address not in seen:
                    seen.add(address)
                    population.append(address)
                if len(population) >= size:
                    return population
    return population


def _latency_block(latencies):
    ordered = sorted(latencies)

    def pct(q):
        return ordered[round(q * (len(ordered) - 1))] * 1000.0 if ordered else 0.0

    return {
        "count": len(ordered),
        "mean_ms": (sum(ordered) / len(ordered) * 1000.0) if ordered else 0.0,
        "p50_ms": pct(0.50),
        "p99_ms": pct(0.99),
        "max_ms": (ordered[-1] * 1000.0) if ordered else 0.0,
    }


def _run_serial(system, requests, *, clear_each: bool):
    """One-thread baseline; ``clear_each`` drops every cache per request."""
    node = FullNode(system)
    system.clear_query_caches()
    payloads = [QueryRequest(address).serialize() for address in requests]
    latencies = []
    start = time.perf_counter()
    for payload in payloads:
        if clear_each:
            system.clear_query_caches()
        t0 = time.perf_counter()
        node.handle_query(payload)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    return {
        "mode": "serial_nocache" if clear_each else "serial_warm",
        "requests": len(payloads),
        "seconds": elapsed,
        "qps": len(payloads) / elapsed if elapsed else 0.0,
        "latency": _latency_block(latencies),
        "caches": {
            "responses": node.response_cache.stats(),
            **system.caches.stats(),
        },
    }


def _run_pooled(system, requests, *, clients: int, workers: int):
    """N client threads against the pooled server, warm caches."""
    node = FullNode(system)
    system.clear_query_caches()
    server = QueryServer(node, num_workers=workers, max_pending=max(64, clients * 8))
    # Warm: serialize each distinct address once at the current tip, so
    # the measured phase sees the steady-state hot cache (the gate's
    # "warm cache" condition).
    for address in dict.fromkeys(requests):
        server.query(address)

    latencies_lock = threading.Lock()
    latencies = []
    errors = []

    def client(worker: int):
        slice_requests = requests[worker::clients]
        local = []
        try:
            for address in slice_requests:
                t0 = time.perf_counter()
                server.query(address, timeout=120)
                local.append(time.perf_counter() - t0)
        except Exception as exc:  # noqa: BLE001 — surface in the report
            errors.append(f"{type(exc).__name__}: {exc}")
        with latencies_lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=client, args=(w,)) for w in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    stats = server.stats()
    server.close()
    if errors:
        raise AssertionError(f"pooled clients failed: {errors[:3]}")
    return {
        "mode": "pooled_warm",
        "clients": clients,
        "workers": workers,
        "requests": len(latencies),
        "seconds": elapsed,
        "qps": len(latencies) / elapsed if elapsed else 0.0,
        "latency": _latency_block(latencies),
        "server": {
            key: stats[key]
            for key in (
                "submitted",
                "rejected",
                "completed",
                "failed",
                "peak_queue_depth",
                "queue_wait",
                "service",
            )
        },
        "caches": stats["caches"],
    }


def _build_equivalence(bodies, config):
    """Sequential vs pooled build: wall-clock + byte-identity."""
    start = time.perf_counter()
    sequential = build_system(bodies, config)
    sequential_seconds = time.perf_counter() - start

    workers = max(2, os.cpu_count() or 2)
    start = time.perf_counter()
    parallel = build_system(bodies, config, workers=workers)
    parallel_seconds = time.perf_counter() - start

    identical = all(
        seq.serialize() == par.serialize()
        for seq, par in zip(sequential.headers(), parallel.headers())
    ) and len(sequential.headers()) == len(parallel.headers()) and all(
        seq.to_bytes() == par.to_bytes()
        for seq, par in zip(sequential.filters, parallel.filters)
    )
    return sequential, {
        "sequential_seconds": sequential_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_workers": workers,
        "cpu_count": os.cpu_count(),
        "byte_identical": identical,
    }


def main() -> int:
    print(
        f"bench_serving: blocks={BLOCKS} txs/block={TXS} clients={CLIENTS} "
        f"workers={WORKERS} requests={REQUESTS} zipf_s={ZIPF_S}"
    )
    workload = generate_workload(
        WorkloadParams(num_blocks=BLOCKS, txs_per_block=TXS, seed=SEED)
    )
    # segment_len must be a power of two; take the largest one <= BLOCKS.
    segment_len = 1 << (BLOCKS.bit_length() - 1)
    config = SystemConfig.lvq(
        bf_bytes=bf_bytes(30), segment_len=segment_len, num_hashes=NUM_HASHES
    )

    system, build_block = _build_equivalence(workload.bodies, config)
    print(
        f"  build: sequential {build_block['sequential_seconds']:.2f}s, "
        f"pooled {build_block['parallel_seconds']:.2f}s "
        f"(workers={build_block['parallel_workers']}), "
        f"byte_identical={build_block['byte_identical']}"
    )
    if not build_block["byte_identical"]:
        raise AssertionError("parallel build diverges from sequential build")

    population = _address_population(workload, POPULATION)
    requests = _zipf_requests(population, REQUESTS, SEED)
    nocache_requests = requests[:NOCACHE_REQUESTS]

    modes = {}
    modes["serial_nocache"] = _run_serial(
        system, nocache_requests, clear_each=True
    )
    modes["serial_warm"] = _run_serial(system, requests, clear_each=False)
    modes["pooled_warm"] = _run_pooled(
        system, requests, clients=CLIENTS, workers=WORKERS
    )

    speedup_vs_nocache = (
        modes["pooled_warm"]["qps"] / modes["serial_nocache"]["qps"]
        if modes["serial_nocache"]["qps"]
        else 0.0
    )
    enforced = BLOCKS >= GATE_MIN_BLOCKS and CLIENTS >= GATE_MIN_CLIENTS
    required = REQUIRED_SPEEDUP if enforced else 1.0
    target = {
        "required_speedup": REQUIRED_SPEEDUP,
        "gate_min_blocks": GATE_MIN_BLOCKS,
        "gate_min_clients": GATE_MIN_CLIENTS,
        "enforced": enforced,
        "pooled_vs_serial_nocache": speedup_vs_nocache,
        "pooled_vs_serial_warm": (
            modes["pooled_warm"]["qps"] / modes["serial_warm"]["qps"]
            if modes["serial_warm"]["qps"]
            else 0.0
        ),
        "met": speedup_vs_nocache >= required,
    }

    report = {
        "schema": "lvq-bench-serving/v1",
        "params": {
            "blocks": BLOCKS,
            "txs_per_block": TXS,
            "clients": CLIENTS,
            "workers": WORKERS,
            "requests": REQUESTS,
            "nocache_requests": NOCACHE_REQUESTS,
            "zipf_s": ZIPF_S,
            "population": len(population),
            "seed": SEED,
            "num_hashes": NUM_HASHES,
        },
        "build": build_block,
        "modes": modes,
        "target": target,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")

    print("\nmode            requests      qps    p50 ms    p99 ms")
    for name, row in modes.items():
        print(
            f"{name:15s} {row['requests']:8d} {row['qps']:8.1f} "
            f"{row['latency']['p50_ms']:9.3f} {row['latency']['p99_ms']:9.3f}"
        )
    hit_rate = modes["pooled_warm"]["caches"]["responses"]["hit_rate"]
    print(
        f"\npooled response-cache hit rate: {hit_rate:.3f}  "
        f"coalesced flights: "
        f"{modes['pooled_warm']['caches']['responses']['coalesced']}"
    )
    print(
        f"target: pooled {speedup_vs_nocache:.2f}x vs serial no-cache "
        f"(required {required:.1f}x, gate "
        f"{'enforced' if enforced else 'smoke: >=1x'})"
    )
    if not target["met"]:
        print("FAIL: pooled server below required speedup")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
