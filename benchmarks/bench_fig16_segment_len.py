"""Fig 16 — number of endpoint nodes vs segment length M.

Expected shape: U-shaped.  M=1 costs one endpoint per block (the BMT
degenerates to per-block filters); very large M costs extra descent
levels around every active block for busy addresses.  The paper finds
1024/2048 (of 4096) preferable — i.e. M between a quarter and half of
the chain — and sparse addresses keep improving with M.
"""

from _common import BENCH_BLOCKS, NUM_HASHES, bf_bytes, write_report

from repro.analysis.report import render_series
from repro.query.config import SystemConfig


def _segment_sweep():
    lengths = []
    length = 1
    while length <= BENCH_BLOCKS:
        lengths.append(length)
        length *= 4
    if lengths[-1] != BENCH_BLOCKS:
        lengths.append(BENCH_BLOCKS)
    return lengths


def test_fig16_endpoints_vs_segment_len(benchmark, bench_workload, cache):
    probe_names = [p.name for p in bench_workload.probe_profiles]
    sweep = _segment_sweep()
    counts = {name: [] for name in probe_names}
    for segment_len in sweep:
        config = SystemConfig.lvq(
            bf_bytes=bf_bytes(30),
            segment_len=segment_len,
            num_hashes=NUM_HASHES,
        )
        for name in probe_names:
            address = bench_workload.probe_addresses[name]
            counts[name].append(cache.result(config, address).num_endpoints())

    text = render_series(
        "M",
        sweep,
        [[str(v) for v in counts[name]] for name in probe_names],
        probe_names,
    )
    write_report("fig16_endpoints_vs_segment_len", text)

    # M = 1: every block is its own endpoint, for every address.
    for name in probe_names:
        assert counts[name][0] == BENCH_BLOCKS

    # Sparse addresses improve monotonically toward large M...
    assert counts["Addr1"][-1] < counts["Addr1"][0] / 10
    # ...while for the busiest address the best M is intermediate-or-full,
    # and small M is never optimal (the paper's 'too small or too large
    # segment leads to many endpoints', with the minimum at 1024/2048).
    best_addr6 = min(counts["Addr6"])
    assert best_addr6 < counts["Addr6"][0]
    assert counts["Addr6"].index(best_addr6) >= 1

    config = SystemConfig.lvq(
        bf_bytes=bf_bytes(30), segment_len=BENCH_BLOCKS, num_hashes=NUM_HASHES
    )
    address = bench_workload.probe_addresses["Addr6"]
    benchmark(lambda: cache.result(config, address).num_endpoints())
