"""Ablation: the range-query extension (DESIGN.md §5, not in the paper).

Measures how the verified-result size scales with the width of the
queried height range.  The useful property: a query over a narrow window
costs far less than the whole-chain query, and the cost grows roughly
with the window, not with the chain — stub nodes compress everything
outside the window to (hash, bf) pairs.
"""

from _common import BENCH_BLOCKS, bf_bytes, write_report

from repro.analysis.report import format_bytes, render_series
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.query.verifier import verify_result


def _widths():
    widths = []
    width = 16
    while width < BENCH_BLOCKS:
        widths.append(width)
        width *= 4
    widths.append(BENCH_BLOCKS)
    return widths


def test_ablation_range_query(benchmark, bench_workload, cache):
    config = SystemConfig.lvq(bf_bytes=bf_bytes(30), segment_len=BENCH_BLOCKS)
    system = cache.system(config)
    headers = system.headers()
    probes = ("Addr1", "Addr4", "Addr6")
    widths = _widths()

    sizes = {name: [] for name in probes}
    for width in widths:
        first = max(1, BENCH_BLOCKS // 2 - width // 2)
        last = min(BENCH_BLOCKS, first + width - 1)
        for name in probes:
            address = bench_workload.probe_addresses[name]
            result = answer_query(system, address, first, last)
            # Every measured proof must also verify.
            verify_result(result, headers, config, address, (first, last))
            sizes[name].append(result.size_bytes(config))

    text = render_series(
        "range width",
        widths,
        [[format_bytes(v) for v in sizes[name]] for name in probes],
        list(probes),
    )
    write_report("ablation_range_query", text)

    for name in probes:
        # Narrow windows are much cheaper than the full chain...
        assert sizes[name][0] < sizes[name][-1]
        # ...and growth is monotone in the window width.
        assert sizes[name] == sorted(sizes[name])
    # The busiest address gains the most from narrowing.
    assert sizes["Addr6"][0] * 4 < sizes["Addr6"][-1]

    address = bench_workload.probe_addresses["Addr6"]
    benchmark.pedantic(
        lambda: answer_query(
            system, address, BENCH_BLOCKS // 2, BENCH_BLOCKS // 2 + 15
        ),
        rounds=3,
        iterations=1,
    )
