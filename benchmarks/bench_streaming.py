"""Streaming watch benchmark: concurrent watchers, push latency, chaos.

Unlike ``bench_network.py`` (which drives a daemon subprocess), this
benchmark runs the server in-process — the phases need scripted appends
and reorgs on the server's chain, which only the owning process can do.
The transport is still real loopback TCP through
:class:`~repro.node.net.NetServer`.

Three phases:

* **watcher scale** — ``LVQ_STREAMING_WATCHERS`` (default 256)
  concurrent :class:`~repro.node.subscribe.SubscriptionSession`\\ s, in
  two watch-set groups (exercising the registry's shared proof builds),
  ride ``LVQ_STREAMING_APPENDS`` live appends; reports notify latency
  (append on the server → verified event surfaced at the client,
  p50/p99) and availability (watchers that verified every push and
  converged to the final tip / watchers);
* **reorg storm** — a 2-deep reorg mid-stream; every watcher must see
  the retraction (pushed or resynced) and converge onto the replacement
  branch;
* **chaos** — a subset of watchers routed through a dropping/corrupting
  /resetting :class:`~repro.node.net.SocketFaultInjector`; all must
  converge with zero unverified events surfaced (rejected frames are
  the defense working, surfaced wrong data would be the failure).

Gates (committed to ``BENCH_streaming.json``; enforced at full scale,
smoke-asserted below it): availability 1.0 in every phase, zero
unverified events, and wallet spot-checks byte-identical to the honest
pull answer.

Run: ``PYTHONPATH=src python benchmarks/bench_streaming.py``
(CI smoke: ``LVQ_STREAMING_WATCHERS=24 LVQ_STREAMING_APPENDS=8``).
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.node.faults import FaultKind, FaultRule, FaultSchedule
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.net import EventLoopThread, NetServer, SocketFaultInjector
from repro.node.session import RetryPolicy
from repro.node.subscribe import SubscriptionRegistry, SubscriptionSession
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.wallet import Wallet
from repro.workload.generator import WorkloadParams, generate_workload

#: Concurrent watchers in the scale phase; the acceptance run uses >= 256.
WATCHERS = int(os.environ.get("LVQ_STREAMING_WATCHERS", "256"))
APPENDS = int(os.environ.get("LVQ_STREAMING_APPENDS", "24"))
BLOCKS = int(os.environ.get("LVQ_STREAMING_BLOCKS", "16"))
TXS = int(os.environ.get("LVQ_STREAMING_TXS", "6"))
CHAOS_WATCHERS = int(os.environ.get("LVQ_STREAMING_CHAOS_WATCHERS", "16"))
CHAOS_APPENDS = int(os.environ.get("LVQ_STREAMING_CHAOS_APPENDS", "8"))
SEED = 2020

#: Below this the gate is a smoke assertion, not the committed claim.
GATE_MIN_WATCHERS = 256

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_streaming.json"

_SPARE = 16  # nudge blocks kept beyond the scripted appends


def _percentile(sorted_values, quantile):
    if not sorted_values:
        return 0.0
    rank = round(quantile * (len(sorted_values) - 1))
    return sorted_values[rank]


def _latency_block(samples_s):
    ordered = sorted(samples_s)
    return {
        "count": len(ordered),
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
        "mean_ms": (statistics.fmean(ordered) * 1e3) if ordered else 0.0,
        "max_ms": (max(ordered) * 1e3) if ordered else 0.0,
    }


def _build_world():
    workload = generate_workload(
        WorkloadParams(
            num_blocks=BLOCKS + APPENDS + CHAOS_APPENDS + _SPARE,
            txs_per_block=TXS,
            seed=SEED,
        )
    )
    config = SystemConfig.lvq(bf_bytes=192, segment_len=8)
    system = build_system(workload.bodies[: BLOCKS + 1], config)
    return workload, config, system


def _start_watchers(count, config, system, address, groups, keepalive=5.0):
    sessions = []
    for index in range(count):
        light = LightNode(system.headers(), config)
        sessions.append(
            SubscriptionSession(
                light,
                address,
                groups[index % len(groups)],
                keepalive=keepalive,
                request_timeout=10.0,
                retry_policy=RetryPolicy(
                    max_rounds=100, base_delay=0.02, max_delay=0.3
                ),
                seed=index,
            ).start()
        )
    return sessions


def _wait_subscribed(sessions, timeout=120.0):
    deadline = time.monotonic() + timeout
    for session in sessions:
        remaining = max(0.1, deadline - time.monotonic())
        if not session.wait_subscribed(remaining):
            return False
    return True


def _wait_converged(sessions, target_tip, timeout):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(s.light.tip_height == target_tip for s in sessions):
            return []
        time.sleep(0.05)
    return [s for s in sessions if s.light.tip_height != target_tip]


def _drain_events(session):
    events = []
    while True:
        event = session.next_event(timeout=0.0)
        if event is None:
            return events
        events.append(event)


def _session_clean(session, events):
    """No rejected/unverified data and no terminal failure."""
    return (
        session.stats.updates_rejected == 0
        and session.stats.verification_failures == 0
        and not any(e.kind == "disconnect" and e.final for e in events)
    )


def _honest_histories(node, config, addresses):
    light = LightNode(node.system.headers(), config)
    wallet = Wallet(light, list(addresses))
    wallet.refresh(node)
    return {
        address: [(h, tx.txid()) for h, tx in wallet.history(address)]
        for address in addresses
    }


def _wallet_matches(node, config, wallet):
    honest = _honest_histories(node, config, wallet.addresses)
    return all(
        [(h, tx.txid()) for h, tx in wallet.history(address)]
        == honest[address]
        for address in wallet.addresses
    )


def main() -> int:
    print(
        f"world: {BLOCKS} base blocks, {APPENDS} appends, "
        f"{WATCHERS} watchers"
    )
    workload, config, system = _build_world()
    node = FullNode(system)
    registry = SubscriptionRegistry(node)
    loop_thread = EventLoopThread("bench-streaming-loop")
    server = NetServer(
        node,
        subscriptions=registry,
        max_connections=WATCHERS + CHAOS_WATCHERS + 64,
        idle_timeout=60.0,
        loop_thread=loop_thread,
    ).start()

    probes = list(workload.probe_addresses.values())
    groups = [tuple(probes[:3]), tuple(probes[3:6] or probes[:3])]

    report: dict = {
        "schema": "lvq-bench-streaming/v1",
        "params": {
            "watchers": WATCHERS,
            "appends": APPENDS,
            "blocks": BLOCKS,
            "txs_per_block": TXS,
            "chaos_watchers": CHAOS_WATCHERS,
            "chaos_appends": CHAOS_APPENDS,
            "seed": SEED,
        },
    }
    try:
        # -- phase 1: watcher scale over live appends -------------------
        print(f"phase 1: subscribing {WATCHERS} watchers...")
        sessions = _start_watchers(
            WATCHERS, config, system, server.address, groups
        )
        subscribed = _wait_subscribed(sessions)
        # One wallet per group folds its session's stream; after the
        # phase it must equal the honest pull answer at the final tip.
        spot_wallets = []
        for session in sessions[: len(groups)]:
            light = LightNode(system.headers(), config)
            wallet = Wallet(light, list(session.watched))
            wallet.refresh(node)  # verified baseline at the pre-append tip
            spot_wallets.append(wallet)
        print(f"phase 1: appending {APPENDS} blocks...")
        append_at = {}
        for _ in range(APPENDS):
            height = system.tip_height + 1
            node.extend_chain([workload.bodies[height]])
            append_at[height] = time.monotonic()
            time.sleep(0.05)
        lagging = _wait_converged(
            sessions, system.tip_height, timeout=60.0 + 0.02 * WATCHERS * APPENDS
        )
        events_by_session = [_drain_events(s) for s in sessions]
        latencies = [
            event.emitted_at - append_at[event.height]
            for events in events_by_session
            for event in events
            if event.kind == "update" and event.height in append_at
        ]
        clean = sum(
            1
            for session, events in zip(sessions, events_by_session)
            if _session_clean(session, events)
            and session.light.tip_height == system.tip_height
        )
        spot_checks = []
        for wallet, events in zip(spot_wallets, events_by_session):
            for event in events:
                wallet.apply_event(event)
            spot_checks.append(_wallet_matches(node, config, wallet))
        scale = {
            "watchers": WATCHERS,
            "subscribed_in_time": subscribed,
            "appends": APPENDS,
            "converged": clean,
            "lagging": len(lagging),
            "availability": clean / WATCHERS if WATCHERS else 0.0,
            "updates_verified_total": sum(
                s.stats.updates_verified for s in sessions
            ),
            "updates_rejected_total": sum(
                s.stats.updates_rejected for s in sessions
            ),
            "resync_backfills_total": sum(
                s.stats.backfills for s in sessions
            ),
            "wallet_spot_checks_ok": all(spot_checks),
            "notify_latency": _latency_block(latencies),
        }
        report["scale"] = scale
        print(
            f"phase 1: availability {scale['availability']:.4f}, "
            f"notify p50 {scale['notify_latency']['p50_ms']:.1f} ms "
            f"p99 {scale['notify_latency']['p99_ms']:.1f} ms"
        )

        # -- phase 2: reorg storm ---------------------------------------
        old_tip = system.tip_height
        fork = old_tip - 2
        alt = generate_workload(
            WorkloadParams(
                num_blocks=old_tip + 4, txs_per_block=TXS, seed=SEED + 1
            )
        )
        print(f"phase 2: reorg fork={fork} old_tip={old_tip}...")
        node.reorg(fork, alt.bodies[fork + 1 : fork + 5])
        lagging = _wait_converged(
            sessions, system.tip_height, timeout=60.0 + 0.02 * WATCHERS
        )
        reorg_events = [_drain_events(s) for s in sessions]
        retractions = sum(
            s.stats.retractions > 0 for s in sessions
        )
        reorg_clean = sum(
            1
            for session, events in zip(sessions, reorg_events)
            if _session_clean(session, events)
            and session.light.tip_height == system.tip_height
        )
        reorg = {
            "fork_height": fork,
            "old_tip": old_tip,
            "new_tip": system.tip_height,
            "watchers_retracted": retractions,
            "converged": reorg_clean,
            "lagging": len(lagging),
            "availability": reorg_clean / WATCHERS if WATCHERS else 0.0,
        }
        report["reorg"] = reorg
        print(
            f"phase 2: {retractions}/{WATCHERS} saw the retraction, "
            f"availability {reorg['availability']:.4f}"
        )
        for session in sessions:
            session.stop()
        sessions = []

        # -- phase 3: chaos through the fault injector ------------------
        print(f"phase 3: {CHAOS_WATCHERS} watchers through the injector...")
        schedule = FaultSchedule(
            [
                FaultRule(FaultKind.DROP, probability=0.05),
                FaultRule(FaultKind.CORRUPT, probability=0.05, param=3),
                FaultRule(FaultKind.CLOSE, probability=0.04, param=64),
            ],
            seed=SEED,
        )
        injector = SocketFaultInjector(
            server.address, schedule, loop_thread=loop_thread
        )
        injector.start()
        chaos_sessions = _start_watchers(
            CHAOS_WATCHERS,
            config,
            system,
            injector.address,
            groups,
            keepalive=0.5,
        )
        try:
            for _ in range(CHAOS_APPENDS):
                node.extend_chain([workload.bodies[system.tip_height + 1]])
                time.sleep(0.1)
            # Quiesce the faults, then nudge so a swallowed final frame
            # cannot hide a gap forever.
            schedule.rules.clear()
            deadline = time.monotonic() + 60.0
            while (
                any(
                    s.light.tip_height != system.tip_height
                    for s in chaos_sessions
                )
                and time.monotonic() < deadline
            ):
                time.sleep(1.0)
                if (
                    any(
                        s.light.tip_height != system.tip_height
                        for s in chaos_sessions
                    )
                    and system.tip_height + 1 < len(workload.bodies)
                ):
                    node.extend_chain([workload.bodies[system.tip_height + 1]])
            chaos_events = [_drain_events(s) for s in chaos_sessions]
            chaos_clean = sum(
                1
                for session, events in zip(chaos_sessions, chaos_events)
                if session.light.tip_height == system.tip_height
                and not any(
                    e.kind == "disconnect" and e.final for e in events
                )
            )
            chaos = {
                "watchers": CHAOS_WATCHERS,
                "appends": CHAOS_APPENDS,
                "fault_counts": dict(schedule.fault_counts),
                "converged": chaos_clean,
                "availability": (
                    chaos_clean / CHAOS_WATCHERS if CHAOS_WATCHERS else 0.0
                ),
                "updates_rejected_total": sum(
                    s.stats.updates_rejected for s in chaos_sessions
                ),
                "reconnects_total": sum(
                    s.stats.disconnects for s in chaos_sessions
                ),
            }
        finally:
            for session in chaos_sessions:
                session.stop()
            injector.close()
        report["chaos"] = chaos
        print(
            f"phase 3: availability {chaos['availability']:.4f}, "
            f"faults {chaos['fault_counts']}, "
            f"{chaos['updates_rejected_total']} pushes rejected (typed)"
        )
        report["server_stats"] = server.stats.as_dict()
        report["registry_stats"] = registry.stats.as_dict()
    finally:
        for session in sessions:
            session.stop()
        registry.close()
        server.close()
        loop_thread.stop()

    enforced = WATCHERS >= GATE_MIN_WATCHERS
    scale_ok = (
        report["scale"]["availability"] == 1.0
        and report["scale"]["subscribed_in_time"]
        and report["scale"]["updates_rejected_total"] == 0
        and report["scale"]["wallet_spot_checks_ok"]
    )
    reorg_ok = report["reorg"]["availability"] == 1.0
    chaos_ok = report["chaos"]["availability"] == 1.0
    report["target"] = {
        "gate_min_watchers": GATE_MIN_WATCHERS,
        "enforced": enforced,
        "scale_ok": scale_ok,
        "reorg_ok": reorg_ok,
        "chaos_ok": chaos_ok,
        "met": scale_ok and reorg_ok and chaos_ok,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    if not report["target"]["met"]:
        print("FAIL: streaming gate not met")
        return 1
    print("streaming gate met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
