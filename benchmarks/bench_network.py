"""Real-network serving benchmark: latency, QPS, scale, availability.

Spawns ``python -m repro serve`` as a real daemon subprocess and drives
it over loopback TCP in three phases:

* **steady load** — a pool-backed client fleet issues verified-size
  query frames back to back; reports client-observed p50/p99/mean
  latency and aggregate QPS;
* **connection scale** — opens ``LVQ_NETWORK_CONNECTIONS`` (default
  1000) *simultaneously held* connections, then drives a ping plus a
  query over every one of them; reports the concurrently-open high
  watermark and per-request success;
* **availability under resets** — routes traffic through a
  :class:`~repro.node.net.SocketFaultInjector` that randomly resets and
  drops frames at the socket layer, with a reconnecting pool retrying;
  reports availability (verified answers / attempts) with and without
  retries, and asserts the LVQ invariant: every accepted answer is
  byte-identical to the honest one (zero wrong answers, ever).

Gates (committed to ``BENCH_network.json``; enforced at full scale,
smoke-asserted below it):

* connection scale reaches the requested concurrency with 100% of the
  held connections serving a correct answer;
* availability with retries >= 99% under the injected reset/drop mix;
* zero wrong or unverified-accepted answers in every phase.

Run: ``PYTHONPATH=src python benchmarks/bench_network.py``
(CI smoke: ``LVQ_NETWORK_CONNECTIONS=128 LVQ_NETWORK_REQUESTS=400``).
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import statistics
import subprocess
import sys
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.errors import ReproError
from repro.node.faults import FaultKind, FaultRule, FaultSchedule
from repro.node.messages import PingRequest, PongResponse, QueryRequest
from repro.node.net import SocketFaultInjector
from repro.node.netclient import ClientConnection, ConnectionPool
from repro.workload.generator import WorkloadParams, generate_workload

BLOCKS = int(os.environ.get("LVQ_NETWORK_BLOCKS", "64"))
TXS = int(os.environ.get("LVQ_NETWORK_TXS", "10"))
#: Simultaneously-held connections in the scale phase; the acceptance
#: run uses >= 1000.
CONNECTIONS = int(os.environ.get("LVQ_NETWORK_CONNECTIONS", "1000"))
#: Requests in the steady-load phase.
REQUESTS = int(os.environ.get("LVQ_NETWORK_REQUESTS", "3000"))
CLIENTS = int(os.environ.get("LVQ_NETWORK_CLIENTS", "16"))
#: Requests attempted through the fault injector.
CHAOS_REQUESTS = int(os.environ.get("LVQ_NETWORK_CHAOS_REQUESTS", "400"))
SEED = 2020

#: Full-scale thresholds; below GATE_MIN_CONNECTIONS the gate is a
#: smoke assertion (everything still must be correct, just not at scale).
GATE_MIN_CONNECTIONS = 1000
REQUIRED_AVAILABILITY = 0.99

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_network.json"

_SERVE_RE = re.compile(r"serving on ([0-9.]+):(\d+)")


def _percentile(sorted_values, quantile):
    if not sorted_values:
        return 0.0
    rank = round(quantile * (len(sorted_values) - 1))
    return sorted_values[rank]


def _latency_block(samples_s):
    ordered = sorted(samples_s)
    return {
        "count": len(ordered),
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
        "mean_ms": (statistics.fmean(ordered) * 1e3) if ordered else 0.0,
        "max_ms": (max(ordered) * 1e3) if ordered else 0.0,
    }


def _spawn_daemon(max_connections):
    """Start ``repro serve`` and return (process, (host, port))."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--blocks",
            str(BLOCKS),
            "--txs-per-block",
            str(TXS),
            "--seed",
            str(SEED),
            "--port",
            "0",
            "--workers",
            "4",
            "--max-pending",
            "256",
            "--max-connections",
            str(max_connections),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    deadline = time.monotonic() + 120.0
    while True:
        line = process.stdout.readline()
        if line:
            match = _SERVE_RE.search(line)
            if match:
                return process, (match.group(1), int(match.group(2)))
        if process.poll() is not None or time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("repro serve failed to start")


def _honest_answers(addresses):
    """The expected response frame per address, computed locally."""
    from repro.node.full_node import FullNode
    from repro.query.builder import build_system
    from repro.query.config import SystemConfig

    workload = generate_workload(
        WorkloadParams(num_blocks=BLOCKS, txs_per_block=TXS, seed=SEED)
    )
    segment_len = 1
    while segment_len * 2 <= BLOCKS:
        segment_len *= 2
    config = SystemConfig.lvq(bf_bytes=512 * 3, segment_len=segment_len)
    node = FullNode(build_system(workload.bodies, config))
    probe = dict(workload.probe_addresses)
    chosen = [probe[name] for name in addresses]
    return {
        address: node.handle_query(QueryRequest(address).serialize())
        for address in chosen
    }


def _phase_steady(address_frames, server_address):
    """CLIENTS threads × pooled requests; latency + QPS + correctness."""
    frames = list(address_frames.items())
    latencies = []
    wrong = []
    errors = []
    lock = threading.Lock()
    per_client = max(1, REQUESTS // CLIENTS)

    def worker(index):
        pool = ConnectionPool(server_address, size=2, seed=index)
        try:
            for i in range(per_client):
                address, expected = frames[(index + i) % len(frames)]
                started = time.perf_counter()
                try:
                    response = pool.request(
                        QueryRequest(address).serialize()
                    )
                except ReproError as error:
                    with lock:
                        errors.append(type(error).__name__)
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
                    if response != expected:
                        wrong.append(address)
        finally:
            pool.close()

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return {
        "clients": CLIENTS,
        "requests": len(latencies) + len(errors),
        "succeeded": len(latencies),
        "failed": len(errors),
        "wrong_answers": len(wrong),
        "qps": (len(latencies) / elapsed) if elapsed else 0.0,
        "latency": _latency_block(latencies),
    }


def _phase_scale(address_frames, server_address):
    """Hold CONNECTIONS sockets open at once; serve on every one."""
    frames = list(address_frames.items())
    connections = [None] * CONNECTIONS
    failures = []
    wrong = []
    latencies = []
    lock = threading.Lock()
    opened_watermark = {"value": 0}
    num_openers = min(64, CONNECTIONS)

    def opener(worker_index):
        for index in range(worker_index, CONNECTIONS, num_openers):
            try:
                connection = ClientConnection(
                    server_address, connect_timeout=30.0
                )
            except ReproError as error:
                with lock:
                    failures.append(("connect", type(error).__name__))
                continue
            connections[index] = connection
            with lock:
                opened = sum(1 for c in connections if c is not None)
                opened_watermark["value"] = max(
                    opened_watermark["value"], opened
                )

    threads = [
        threading.Thread(target=opener, args=(i,)) for i in range(num_openers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    held = [c for c in connections if c is not None]

    def driver(worker_index):
        for index in range(worker_index, len(held), num_openers):
            connection = held[index]
            address, expected = frames[index % len(frames)]
            started = time.perf_counter()
            try:
                pong = PongResponse.deserialize(
                    connection.request(
                        PingRequest(index).serialize(), timeout=60.0
                    )
                )
                assert pong.nonce == index
                response = connection.request(
                    QueryRequest(address).serialize(), timeout=60.0
                )
            except (ReproError, AssertionError) as error:
                with lock:
                    failures.append(("request", type(error).__name__))
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                if response != expected:
                    wrong.append(address)

    threads = [
        threading.Thread(target=driver, args=(i,)) for i in range(num_openers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for connection in held:
        connection.close()

    return {
        "requested_connections": CONNECTIONS,
        "opened": len(held),
        "concurrent_high_watermark": opened_watermark["value"],
        "served": len(latencies),
        "failures": len(failures),
        "wrong_answers": len(wrong),
        "latency": _latency_block(latencies),
    }


def _phase_chaos(address_frames, server_address):
    """Traffic through a resetting/dropping proxy; pooled retries."""
    frames = list(address_frames.items())
    schedule = FaultSchedule(
        [
            FaultRule(FaultKind.CLOSE, probability=0.05),
            FaultRule(FaultKind.DROP, probability=0.05),
        ],
        seed=SEED,
    )
    first_try = 0
    with_retry = 0
    wrong = []
    error_kinds = {}
    with SocketFaultInjector(server_address, schedule) as injector:
        pool = ConnectionPool(
            injector.address,
            size=4,
            request_timeout=2.0,
            backoff_base=0.005,
            backoff_max=0.05,
            seed=SEED,
        )
        try:
            for index in range(CHAOS_REQUESTS):
                address, expected = frames[index % len(frames)]
                frame = QueryRequest(address).serialize()
                for attempt in range(5):
                    try:
                        response = pool.request(frame)
                    except ReproError as error:
                        name = type(error).__name__
                        error_kinds[name] = error_kinds.get(name, 0) + 1
                        continue
                    if response != expected:
                        wrong.append(address)
                    else:
                        with_retry += 1
                        if attempt == 0:
                            first_try += 1
                    break
        finally:
            pool.close()
    return {
        "requests": CHAOS_REQUESTS,
        "fault_counts": dict(schedule.fault_counts),
        "availability_first_try": first_try / CHAOS_REQUESTS,
        "availability_with_retries": with_retry / CHAOS_REQUESTS,
        "wrong_answers": len(wrong),
        "typed_errors": error_kinds,
        "pool": dict(pool.stats),
    }


def main() -> int:
    addresses = ("Addr3", "Addr4", "Addr5", "Addr6")
    print(
        f"building the honest baseline ({BLOCKS} blocks, "
        f"{len(addresses)} probes)..."
    )
    address_frames = _honest_answers(addresses)

    process, server_address = _spawn_daemon(
        max_connections=max(CONNECTIONS + 64, 256)
    )
    print(f"daemon up at {server_address[0]}:{server_address[1]}")
    try:
        print(f"phase 1: steady load ({REQUESTS} requests, {CLIENTS} clients)")
        steady = _phase_steady(address_frames, server_address)
        print(
            f"phase 2: connection scale ({CONNECTIONS} held connections)"
        )
        scale = _phase_scale(address_frames, server_address)
        print(f"phase 3: chaos availability ({CHAOS_REQUESTS} requests)")
        chaos = _phase_chaos(address_frames, server_address)
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(30.0)
        except subprocess.TimeoutExpired:
            process.kill()

    enforced = CONNECTIONS >= GATE_MIN_CONNECTIONS
    wrong_total = (
        steady["wrong_answers"]
        + scale["wrong_answers"]
        + chaos["wrong_answers"]
    )
    scale_ok = (
        scale["opened"] == CONNECTIONS
        and scale["served"] == scale["opened"]
        and scale["concurrent_high_watermark"] >= CONNECTIONS
    )
    availability_ok = (
        chaos["availability_with_retries"] >= REQUIRED_AVAILABILITY
    )
    target = {
        "gate_min_connections": GATE_MIN_CONNECTIONS,
        "required_availability": REQUIRED_AVAILABILITY,
        "enforced": enforced,
        "scale_reached": scale_ok,
        "availability_met": availability_ok,
        "zero_wrong_answers": wrong_total == 0,
        "met": scale_ok and availability_ok and wrong_total == 0,
    }

    report = {
        "schema": "lvq-bench-network/v1",
        "params": {
            "blocks": BLOCKS,
            "txs_per_block": TXS,
            "connections": CONNECTIONS,
            "requests": REQUESTS,
            "clients": CLIENTS,
            "chaos_requests": CHAOS_REQUESTS,
            "seed": SEED,
        },
        "steady": steady,
        "scale": scale,
        "chaos": chaos,
        "target": target,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")

    print(
        f"\nsteady : {steady['qps']:8.1f} qps  "
        f"p50 {steady['latency']['p50_ms']:7.3f} ms  "
        f"p99 {steady['latency']['p99_ms']:7.3f} ms  "
        f"({steady['succeeded']}/{steady['requests']} ok)"
    )
    print(
        f"scale  : {scale['served']}/{scale['requested_connections']} "
        f"connections served  (watermark {scale['concurrent_high_watermark']}, "
        f"p99 {scale['latency']['p99_ms']:.1f} ms)"
    )
    print(
        f"chaos  : availability {chaos['availability_with_retries']:.4f} "
        f"with retries ({chaos['availability_first_try']:.4f} first try), "
        f"faults {chaos['fault_counts']}"
    )
    print(f"wrong answers anywhere: {wrong_total}")
    if not target["met"]:
        print("FAIL: network gate not met")
        return 1
    print("network gate met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
