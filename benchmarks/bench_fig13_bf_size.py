"""Fig 13 — impact of BF size (10KB → 500KB paper scale) on result size.

Expected shape: the empty address fluctuates in a narrow range; busy
addresses grow roughly linearly with the filter size (every endpoint and
existence block drags full filters along), so small filters win — the
paper picks 30KB.
"""

from _common import BF_SWEEP_KIB, bf_bytes, lvq_config_for_kib, write_report

from repro.analysis.report import format_bytes, render_series


def test_fig13_bf_size_sweep(benchmark, bench_workload, cache):
    probe_names = [p.name for p in bench_workload.probe_profiles]
    sizes = {name: [] for name in probe_names}
    for paper_kib in BF_SWEEP_KIB:
        config = lvq_config_for_kib(paper_kib)
        for name in probe_names:
            address = bench_workload.probe_addresses[name]
            sizes[name].append(
                cache.result(config, address).size_bytes(config)
            )

    text = render_series(
        "BF(paper-KB)",
        [f"{kib} ({bf_bytes(kib)}B here)" for kib in BF_SWEEP_KIB],
        [
            [format_bytes(value) for value in sizes[name]]
            for name in probe_names
        ],
        probe_names,
    )
    write_report("fig13_bf_size_sweep", text)

    # Busy addresses grow strongly with BF size ("roughly 40-fold" for
    # Addr6 across the paper's sweep); the empty address barely moves.
    assert sizes["Addr6"][-1] > 10 * sizes["Addr6"][0]
    assert sizes["Addr1"][-1] < 60 * sizes["Addr1"][0]
    # Monotone growth for the busiest address.
    assert sizes["Addr6"] == sorted(sizes["Addr6"])

    config = lvq_config_for_kib(30)
    address = bench_workload.probe_addresses["Addr3"]
    system = cache.system(config)
    from repro.query.prover import answer_query

    benchmark.pedantic(
        lambda: answer_query(system, address), rounds=3, iterations=1
    )
