"""Prover throughput baseline: fast path vs naive reference (QPS).

This harness seeds the repo's performance trajectory.  It builds the
Fig-12 systems over the standard synthetic workload, then times three
query-serving mixes over the Table-III probe profiles:

* **single** — one full-range query per probe address, repeated;
* **batch**  — all probes answered in one ``answer_batch_query``;
* **range**  — sliding sub-range queries for the heavy probes.

Each mix is timed twice: once through :mod:`repro.query.naive` (the
pre-fast-path algorithms, preserved verbatim) and once through the fast
prover.  Before any timing, the harness asserts the two paths produce
**byte-identical** serialized answers — a speedup over a wrong answer is
worthless.  Results land in ``BENCH_throughput.json`` at the repo root;
EXPERIMENTS.md §"Prover performance" documents the schema.  Future PRs
must not regress the recorded speedups.

Run: ``PYTHONPATH=src python benchmarks/bench_throughput.py``
(``LVQ_BENCH_BLOCKS=64`` for the CI smoke run; the ≥5× Addr5/Addr6
speedup gate is enforced only at >= 1024 blocks, where the paper-scale
chain makes the naive path's O(chain) costs visible).
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _common import BENCH_BLOCKS, BENCH_TXS, NUM_HASHES, fig12_configs
from repro.query.batch import answer_batch_query
from repro.query.naive import answer_batch_query_naive, answer_query_naive
from repro.query.builder import build_system
from repro.query.prover import answer_query
from repro.workload.generator import WorkloadParams, generate_workload

ROUNDS = int(os.environ.get("LVQ_BENCH_ROUNDS", "5"))
#: The acceptance gate: fast path must beat naive by this factor on the
#: heavy probes (Addr5/Addr6) at paper scale.
REQUIRED_SPEEDUP = 5.0
#: Below this chain length the gate is informational only (CI smoke).
GATE_MIN_BLOCKS = 1024

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_throughput.json"

#: Systems timed for throughput (BMT headline + per-block baseline);
#: the remaining kinds are still equivalence-checked.
TIMED_SYSTEMS = ("lvq", "strawman")
HEAVY_PROBES = ("Addr5", "Addr6")


def _time_queries(run_one, count: int) -> float:
    """Total seconds for ``count`` sequential invocations of ``run_one``.

    GC is paused while the clock runs — a collection pause landing inside
    a single-query cold measurement would otherwise dwarf the query.
    """
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(count):
            run_one()
        return time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()


def _mix_entry(system, naive_fn, fast_fn, check_bytes=True):
    """Time one (naive, fast) pair; returns the JSON row for the mix."""
    if check_bytes:
        config = system.config
        fast_bytes = fast_fn().serialize(config)
        naive_bytes = naive_fn().serialize(config)
        if fast_bytes != naive_bytes:
            raise AssertionError(
                f"{config.kind.value}: fast path diverges from naive path"
            )

    naive_total = _time_queries(naive_fn, ROUNDS)
    # Cold: memo dropped, first query pays full resolution cost.
    system.clear_query_caches()
    cold_seconds = _time_queries(fast_fn, 1)
    # Serving throughput: memo warm after the first round, as in steady
    # state.  The cold round is charged to the fast path's total.
    fast_total = cold_seconds + _time_queries(fast_fn, ROUNDS - 1)

    naive_per_query = naive_total / ROUNDS
    fast_per_query = fast_total / ROUNDS
    return {
        "rounds": ROUNDS,
        "naive_s_per_query": naive_per_query,
        "fast_s_per_query": fast_per_query,
        "fast_cold_s_per_query": cold_seconds,
        "naive_qps": 1.0 / naive_per_query if naive_per_query else 0.0,
        "fast_qps": 1.0 / fast_per_query if fast_per_query else 0.0,
        "speedup": naive_per_query / fast_per_query if fast_per_query else 0.0,
        "cold_speedup": (
            naive_per_query / cold_seconds if cold_seconds else 0.0
        ),
    }


def _serialize_batch(batch, config):
    return batch.serialize(config)


def _range_windows(tip_height: int):
    """Deterministic sliding windows covering ~quarter-chain slices."""
    width = max(1, tip_height // 4)
    step = max(1, tip_height // 8)
    windows = []
    first = 1
    while first <= tip_height:
        windows.append((first, min(first + width - 1, tip_height)))
        first += step
    return windows[:6]


def _bench_system(name, system, workload):
    config = system.config
    probes = workload.probe_addresses
    report = {
        "kind": config.kind.value,
        "bf_bytes": config.bf_bytes,
        "segment_len": config.segment_len,
        "single": {},
        "batch": {},
        "range": {},
    }

    for probe_name, address in probes.items():
        report["single"][probe_name] = _mix_entry(
            system,
            lambda a=address: answer_query_naive(system, a),
            lambda a=address: answer_query(system, a),
        )

    addresses = list(probes.values())
    fast_batch = answer_batch_query(system, addresses)
    naive_batch = answer_batch_query_naive(system, addresses)
    if fast_batch.serialize(config) != naive_batch.serialize(config):
        raise AssertionError(f"{name}: batch fast path diverges from naive")
    report["batch"]["all_probes"] = _mix_entry(
        system,
        lambda: answer_batch_query_naive(system, addresses),
        lambda: answer_batch_query(system, addresses),
        check_bytes=False,  # checked above (BatchQueryResult API differs)
    )

    windows = _range_windows(system.tip_height)
    for probe_name in HEAVY_PROBES:
        address = probes[probe_name]

        def naive_sweep(a=address):
            for first, last in windows:
                answer_query_naive(system, a, first, last)
            return answer_query_naive(system, a, *windows[0])

        def fast_sweep(a=address):
            for first, last in windows:
                answer_query(system, a, first, last)
            return answer_query(system, a, *windows[0])

        report["range"][probe_name] = _mix_entry(
            system, naive_sweep, fast_sweep
        )
    return report


def _check_equivalence(system, workload) -> bool:
    """Byte-identical fast/naive answers for every probe + absent addr."""
    config = system.config
    addresses = list(workload.probe_addresses.values()) + ["absent-addr"]
    for address in addresses:
        if answer_query(system, address).serialize(config) != (
            answer_query_naive(system, address).serialize(config)
        ):
            return False
    return True


def main() -> int:
    params = WorkloadParams(
        num_blocks=BENCH_BLOCKS, txs_per_block=BENCH_TXS, seed=2020
    )
    print(
        f"bench_throughput: blocks={BENCH_BLOCKS} txs/block={BENCH_TXS} "
        f"rounds={ROUNDS}"
    )
    workload = generate_workload(params)
    configs = fig12_configs()

    report = {
        "schema": "lvq-bench-throughput/v1",
        "params": {
            "blocks": BENCH_BLOCKS,
            "txs_per_block": BENCH_TXS,
            "num_hashes": NUM_HASHES,
            "seed": 2020,
            "rounds": ROUNDS,
        },
        "systems": {},
        "equivalence": {},
        "target": {
            "required_speedup": REQUIRED_SPEEDUP,
            "gate_min_blocks": GATE_MIN_BLOCKS,
            "enforced": BENCH_BLOCKS >= GATE_MIN_BLOCKS,
        },
    }

    systems = {}
    for name, config in configs.items():
        start = time.perf_counter()
        systems[name] = build_system(workload.bodies, config)
        build_seconds = time.perf_counter() - start
        equal = _check_equivalence(systems[name], workload)
        report["equivalence"][name] = equal
        print(
            f"  built {name:10s} in {build_seconds:7.2f}s  "
            f"equivalence={'ok' if equal else 'FAIL'}"
        )
        if not equal:
            raise AssertionError(
                f"{name}: fast path is not byte-identical to the naive path"
            )
        if name in TIMED_SYSTEMS:
            system_report = _bench_system(name, systems[name], workload)
            system_report["build_seconds"] = build_seconds
            report["systems"][name] = system_report
        else:
            del systems[name]  # free memory for the next build

    lvq_single = report["systems"]["lvq"]["single"]
    target = report["target"]
    for probe_name in HEAVY_PROBES:
        target[f"{probe_name.lower()}_speedup"] = lvq_single[probe_name][
            "speedup"
        ]
    target["met"] = all(
        target[f"{p.lower()}_speedup"] >= REQUIRED_SPEEDUP
        for p in HEAVY_PROBES
    )

    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")

    print("\nsystem      mix     probe       naive qps    fast qps   speedup")
    for name, system_report in report["systems"].items():
        for mix in ("single", "batch", "range"):
            for probe_name, row in system_report[mix].items():
                print(
                    f"{name:10s}  {mix:6s}  {probe_name:10s} "
                    f"{row['naive_qps']:11.1f} {row['fast_qps']:11.1f} "
                    f"{row['speedup']:8.2f}x"
                )

    if target["enforced"] and not target["met"]:
        print(
            f"FAIL: heavy-probe speedup below {REQUIRED_SPEEDUP}x "
            f"(Addr5={target['addr5_speedup']:.2f}x, "
            f"Addr6={target['addr6_speedup']:.2f}x)"
        )
        return 1
    print(
        f"target: Addr5={target['addr5_speedup']:.2f}x "
        f"Addr6={target['addr6_speedup']:.2f}x "
        f"(gate {'enforced' if target['enforced'] else 'informational'})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
