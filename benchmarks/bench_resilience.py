"""Resilience benchmark: availability and retry overhead under adversity.

The robustness counterpart of ``bench_throughput.py``.  It builds one
paper-faithful LVQ system, then drives :class:`QuerySession` through two
harnesses on a simulated clock (so latency is charged, never slept):

* **malicious-fraction sweep** — 3-peer sessions with 0/3, 1/3 and 2/3
  malicious peers (cycling through every content attack in
  ``ALL_ATTACKS``); honest peers sit behind lossy-but-finite links
  (scripted early drops + probabilistic extra latency).  Because the
  drops are finite scripts and a verification failure permanently bans
  the lying peer, **availability must be 100%** at every fraction — the
  cost of adversity shows up as retry overhead (extra attempts, extra
  bytes, backoff time), not as lost answers.  That gate is enforced.
* **3-peer smoke** — 1 honest + 1 flaky + 1 malicious peer answering
  every probe address once; the canonical "one good peer is enough"
  configuration exercised end to end.

Results land in ``BENCH_resilience.json`` at the repo root (schema
``lvq-bench-resilience/v1``); EXPERIMENTS.md documents the fields.

Run: ``PYTHONPATH=src python benchmarks/bench_resilience.py``
(``LVQ_RESILIENCE_BLOCKS=48 LVQ_RESILIENCE_TRIALS=8`` for the CI smoke
run).
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _common import NUM_HASHES, bf_bytes
from repro.node.faults import (
    FaultKind,
    FaultRule,
    FaultSchedule,
    FaultyTransport,
    FlakyFullNode,
)
from repro.node.full_node import FullNode
from repro.node.light_node import LightNode
from repro.node.session import Peer, QuerySession, RetryPolicy
from repro.node.transport import InProcessTransport, LinkModel, SimulatedClock
from repro.query.adversary import ALL_ATTACKS, MaliciousFullNode
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.workload.generator import WorkloadParams, generate_workload

BLOCKS = int(os.environ.get("LVQ_RESILIENCE_BLOCKS", "128"))
TXS_PER_BLOCK = int(os.environ.get("LVQ_RESILIENCE_TXS", "10"))
#: Sessions per malicious fraction; every session queries all probes.
TRIALS = int(os.environ.get("LVQ_RESILIENCE_TRIALS", "20"))
SEED = 20200704
PEERS = 3

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_resilience.json"

_ATTACK_NAMES = sorted(ALL_ATTACKS)


def _lossy_link_factory(rng, clock):
    """An honest peer's link: finitely many scripted early drops plus
    probabilistic extra latency.  Finite drops keep success structural —
    the session's retry budget always outlasts the script."""
    drops = sorted(rng.sample(range(6), rng.randrange(0, 3)))
    rules = []
    if drops:
        rules.append(FaultRule(FaultKind.DROP, at_messages=drops))
    rules.append(
        FaultRule(
            FaultKind.DELAY,
            probability=rng.uniform(0.2, 0.8),
            param=rng.uniform(0.05, 0.4),
        )
    )
    schedule = FaultSchedule(rules, seed=rng.randrange(1 << 30))
    link = LinkModel.home_broadband()
    return lambda: FaultyTransport(schedule=schedule, clock=clock, link=link)


def _session_peers(system, malicious, rng, clock, attack_cursor):
    """3 peers, ``malicious`` of them lying (attacks cycled), the honest
    remainder behind lossy links."""
    peers = []
    for index in range(malicious):
        name = _ATTACK_NAMES[next(attack_cursor) % len(_ATTACK_NAMES)]
        peers.append(
            Peer(
                f"malicious{index}:{name}",
                MaliciousFullNode(system, ALL_ATTACKS[name]),
            )
        )
    for index in range(PEERS - malicious):
        peers.append(
            Peer(
                f"honest{index}",
                FullNode(system),
                transport_factory=_lossy_link_factory(rng, clock),
            )
        )
    rng.shuffle(peers)
    return peers


def _clean_bytes_per_query(system, probes) -> float:
    """Baseline wire cost: one honest query per probe on a clean link."""
    light = LightNode(system.headers(), system.config)
    node = FullNode(system)
    total = 0
    for address in probes.values():
        transport = InProcessTransport()
        light.query_history(node, address, transport)
        total += transport.stats.total_bytes
    return total / len(probes)


def _sweep_fraction(system, probes, malicious, clean_bytes):
    """TRIALS sessions at one malicious fraction; aggregate the stats."""
    rng = random.Random(SEED + malicious * 1000)
    attack_cursor = iter(range(10**9))
    queries = successes = attempts = retries = banned = 0
    backoff = answer_seconds = total_bytes = 0.0
    for trial in range(TRIALS):
        clock = SimulatedClock()
        peers = _session_peers(system, malicious, rng, clock, attack_cursor)
        session = QuerySession(
            LightNode(system.headers(), system.config),
            peers,
            clock=clock,
            request_timeout=5.0,
            retry=RetryPolicy(
                max_rounds=6, base_delay=0.05, max_delay=1.0, jitter=0.25
            ),
            quarantine_base=0.05,
            seed=rng.randrange(1 << 30),
        )
        for address in probes.values():
            before = clock.now()
            session.query(address)
            answer_seconds += clock.now() - before
        stats = session.stats
        queries += stats.queries
        successes += stats.successes
        attempts += stats.attempts
        retries += stats.retries
        backoff += stats.backoff_seconds
        banned += sum(1 for peer in peers if peer.banned)
        total_bytes += sum(
            peer.stats.transport.total_bytes for peer in peers
        )
    return {
        "malicious_peers": malicious,
        "total_peers": PEERS,
        "sessions": TRIALS,
        "queries": queries,
        "successes": successes,
        "availability": successes / queries if queries else 0.0,
        "attempts_per_query": attempts / queries if queries else 0.0,
        "retry_overhead": (attempts / successes - 1.0) if successes else 0.0,
        "retries": retries,
        "backoff_seconds": backoff,
        "mean_answer_seconds": answer_seconds / queries if queries else 0.0,
        "bytes_per_query": total_bytes / queries if queries else 0.0,
        "clean_bytes_per_query": clean_bytes,
        "bytes_overhead": (
            (total_bytes / queries) / clean_bytes if queries else 0.0
        ),
        "peers_banned": banned,
    }


def _smoke(system, probes):
    """1 honest + 1 flaky + 1 malicious: every probe answered."""
    clock = SimulatedClock()
    peers = [
        Peer("honest", FullNode(system)),
        Peer(
            "flaky",
            FlakyFullNode(system, failure_rate=0.4, seed=SEED),
        ),
        Peer(
            "malicious:omit",
            MaliciousFullNode(system, ALL_ATTACKS["omit_one_transaction"]),
        ),
    ]
    session = QuerySession(
        LightNode(system.headers(), system.config),
        peers,
        clock=clock,
        request_timeout=5.0,
        retry=RetryPolicy(max_rounds=6, base_delay=0.05, max_delay=1.0),
        quarantine_base=0.05,
        seed=SEED,
    )
    winners = {}
    for name, address in probes.items():
        session.query(address)
        winners[name] = session.last_winner
    report = session.stats.as_dict()
    report["winners"] = winners
    return report


def main() -> int:
    print(
        f"bench_resilience: blocks={BLOCKS} txs/block={TXS_PER_BLOCK} "
        f"trials={TRIALS} peers={PEERS}"
    )
    workload = generate_workload(
        WorkloadParams(num_blocks=BLOCKS, txs_per_block=TXS_PER_BLOCK, seed=2020)
    )
    # Largest power of two <= BLOCKS (segment lengths must be powers of 2).
    segment_len = 1 << (BLOCKS.bit_length() - 1)
    config = SystemConfig.lvq(
        bf_bytes=bf_bytes(30), segment_len=segment_len, num_hashes=NUM_HASHES
    )
    system = build_system(workload.bodies, config)
    probes = workload.probe_addresses
    clean_bytes = _clean_bytes_per_query(system, probes)

    report = {
        "schema": "lvq-bench-resilience/v1",
        "params": {
            "blocks": BLOCKS,
            "txs_per_block": TXS_PER_BLOCK,
            "trials": TRIALS,
            "peers": PEERS,
            "seed": SEED,
            "kind": config.kind.value,
            "probe_addresses": len(probes),
        },
        "fractions": [],
        "smoke": {},
    }

    print("\nmalicious  avail   attempts/q  retry-ovh  bytes-ovh  backoff(s)")
    ok = True
    for malicious in (0, 1, 2):
        row = _sweep_fraction(system, probes, malicious, clean_bytes)
        report["fractions"].append(row)
        print(
            f"  {malicious}/{PEERS}      {row['availability']:6.1%}  "
            f"{row['attempts_per_query']:9.2f}  "
            f"{row['retry_overhead']:9.2f}  "
            f"{row['bytes_overhead']:9.2f}  "
            f"{row['backoff_seconds']:9.2f}"
        )
        if row["availability"] < 1.0:
            ok = False

    report["smoke"] = _smoke(system, probes)
    smoke_ok = report["smoke"]["failures"] == 0
    ok = ok and smoke_ok
    print(
        f"\nsmoke (honest+flaky+malicious): "
        f"{report['smoke']['successes']}/{report['smoke']['queries']} served, "
        f"winners={sorted(set(report['smoke']['winners'].values()))}"
    )

    report["gates"] = {
        "availability_met": ok,
        "note": (
            "honest links use finite drop scripts, so 100% availability "
            "with >=1 honest peer is structural, not probabilistic"
        ),
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    if not ok:
        print("AVAILABILITY GATE FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
