"""Overload robustness benchmark: admission control under a Zipf burst.

Spawns ``python -m repro serve`` with a deliberately small queue, a
per-client rate limit, and the metrics endpoint enabled, then drives it
over loopback TCP:

* **Zipf burst** — a client fleet (each with its own §11 hello
  identity) fires a mixed-class workload back to back: interactive
  history queries, batch queries, and header syncs, with targets drawn
  from a Zipf distribution.  The queue fills past its watermarks, so
  the server sheds batch-class load first with typed, retry-hinted
  refusals.
* **one hot client** — a single identity hammers with no pacing and is
  held to its token bucket; everyone else's budget is untouched.
* **metrics scrape** — ``/metrics`` is fetched and parsed; the server's
  shed/ratelimit/queue-full counters must account exactly for every
  refusal the clients observed.

Gates (committed to ``BENCH_overload.json``; enforced at full scale,
smoke-asserted below it):

* availability 1.0 for admitted traffic — every request that passed
  admission returned the byte-identical honest answer (zero wrong
  answers, zero unexplained failures);
* the hot client was rate limited while the fleet stayed served;
* staged shedding engaged (shed or queue-full refusals, with watermark
  state transitions recorded);
* interactive (high-priority) p99 stays under the gate;
* the shed/ratelimit/queue-full counters on ``/metrics`` equal the
  refusals observed client side.

Run: ``PYTHONPATH=src python benchmarks/bench_overload.py``
(CI smoke: ``LVQ_OVERLOAD_CLIENTS=6 LVQ_OVERLOAD_REQUESTS=240``).
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import re
import signal
import statistics
import subprocess
import sys
import threading
import time
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.errors import (
    BackpressureError,
    RateLimitedError,
    ReproError,
    RequestShedError,
    ServerOverloadedError,
)
from repro.node.messages import (
    BatchQueryRequest,
    ErrorResponse,
    HeadersRequest,
    QueryRequest,
)
from repro.node.metrics import parse_metrics
from repro.node.netclient import ConnectionPool, error_from_frame
from repro.workload.generator import WorkloadParams, generate_workload

BLOCKS = int(os.environ.get("LVQ_OVERLOAD_BLOCKS", "48"))
TXS = int(os.environ.get("LVQ_OVERLOAD_TXS", "8"))
CLIENTS = int(os.environ.get("LVQ_OVERLOAD_CLIENTS", "16"))
#: Total fleet requests (split across the clients).
REQUESTS = int(os.environ.get("LVQ_OVERLOAD_REQUESTS", "1600"))
#: Per-client token-bucket rate on the server.
RATE_LIMIT = float(os.environ.get("LVQ_OVERLOAD_RATE", "120"))
QUEUE_DEPTH = int(os.environ.get("LVQ_OVERLOAD_QUEUE", "8"))
WORKERS = int(os.environ.get("LVQ_OVERLOAD_WORKERS", "2"))
#: How long the unpaced hot client hammers alongside the burst.
HOT_SECONDS = float(os.environ.get("LVQ_OVERLOAD_HOT_SECONDS", "3.0"))
SEED = 2020

#: Below this request count the gates are smoke assertions only.
GATE_MIN_REQUESTS = 800
GATE_INTERACTIVE_P99_MS = 2000.0

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_overload.json"

_SERVE_RE = re.compile(r"serving on ([0-9.]+):(\d+)")
_METRICS_RE = re.compile(r"metrics on ([0-9.]+):(\d+)")

_BACKPRESSURE_KINDS = {
    RateLimitedError: "ratelimited",
    RequestShedError: "shed",
    ServerOverloadedError: "queue_full",
}


def _percentile(sorted_values, quantile):
    if not sorted_values:
        return 0.0
    rank = round(quantile * (len(sorted_values) - 1))
    return sorted_values[rank]


def _latency_block(samples_s):
    ordered = sorted(samples_s)
    return {
        "count": len(ordered),
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
        "mean_ms": (statistics.fmean(ordered) * 1e3) if ordered else 0.0,
        "max_ms": (max(ordered) * 1e3) if ordered else 0.0,
    }


def _spawn_daemon():
    """Start ``repro serve`` with overload knobs + metrics; return
    (process, serve_address, metrics_address)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--blocks",
            str(BLOCKS),
            "--txs-per-block",
            str(TXS),
            "--seed",
            str(SEED),
            "--port",
            "0",
            "--workers",
            str(WORKERS),
            "--queue-depth",
            str(QUEUE_DEPTH),
            "--max-connections",
            str(CLIENTS * 4 + 64),
            "--rate-limit",
            str(RATE_LIMIT),
            "--metrics-port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    serve_address = None
    metrics_address = None
    deadline = time.monotonic() + 120.0
    while serve_address is None or metrics_address is None:
        line = process.stdout.readline()
        if line:
            match = _SERVE_RE.search(line)
            if match:
                serve_address = (match.group(1), int(match.group(2)))
            match = _METRICS_RE.search(line)
            if match:
                metrics_address = (match.group(1), int(match.group(2)))
        if process.poll() is not None or time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("repro serve failed to start")
    return process, serve_address, metrics_address


def _honest_node():
    """A local twin of the daemon's system (same seed/params/config)."""
    from repro.node.full_node import FullNode
    from repro.query.builder import build_system
    from repro.query.config import SystemConfig

    workload = generate_workload(
        WorkloadParams(num_blocks=BLOCKS, txs_per_block=TXS, seed=SEED)
    )
    segment_len = 1
    while segment_len * 2 <= BLOCKS:
        segment_len *= 2
    config = SystemConfig.lvq(bf_bytes=512 * 3, segment_len=segment_len)
    node = FullNode(build_system(workload.bodies, config))
    return node, dict(workload.probe_addresses)


def _build_workload_frames(node, probe):
    """(class, frame, expected-bytes) triples for every request shape."""
    addresses = [probe[n] for n in sorted(probe)][:6]
    frames = {"interactive": [], "batch": [], "sync": []}
    for address in addresses:
        frame = QueryRequest(address).serialize()
        frames["interactive"].append((frame, node.handle_query(frame)))
    for index in range(len(addresses) - 1):
        frame = BatchQueryRequest(addresses[index : index + 2]).serialize()
        frames["batch"].append((frame, node.handle_batch_query(frame)))
    sync_frame = HeadersRequest(0).serialize()
    frames["sync"].append((sync_frame, node.handle_headers(sync_frame)))
    return frames


def _request(pool, frame):
    """Pool request that rebuilds error frames into typed exceptions
    (the pool itself hands frames back verbatim)."""
    response = pool.request(frame)
    if response and response[0] == ErrorResponse.type_tag:
        raise error_from_frame(ErrorResponse.deserialize(response))
    return response


def _zipf_indices(rng, count, size, s=1.2):
    """Zipf-weighted index stream: rank 1 dominates, the tail is long."""
    weights = [1.0 / ((rank + 1) ** s) for rank in range(size)]
    total = sum(weights)
    edges = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        edges.append(acc)
    out = []
    for _ in range(count):
        roll = rng.random()
        out.append(next(i for i, edge in enumerate(edges) if roll <= edge))
    return out


def _phase_burst(frames, server_address):
    """The fleet: mixed-class Zipf traffic, one identity per client."""
    lock = threading.Lock()
    results = {
        "attempted": 0,
        "admitted": 0,
        "rejections": {"ratelimited": 0, "shed": 0, "queue_full": 0},
        "wrong_answers": 0,
        "other_failures": {},
    }
    interactive_latencies = []
    per_client = max(1, REQUESTS // CLIENTS)
    # 55% interactive / 30% batch / 15% sync, deterministic per client.
    class_mix = ["interactive"] * 11 + ["batch"] * 6 + ["sync"] * 3

    def worker(index):
        rng = random.Random(SEED * 1000 + index)
        pool = ConnectionPool(
            server_address,
            size=2,
            seed=index,
            client_id=f"client-{index}",
        )
        try:
            for i in range(per_client):
                kind = class_mix[(index + i) % len(class_mix)]
                choices = frames[kind]
                pick = _zipf_indices(rng, 1, len(choices))[0]
                frame, expected = choices[pick]
                started = time.perf_counter()
                try:
                    response = _request(pool, frame)
                except ReproError as error:
                    with lock:
                        results["attempted"] += 1
                        name = type(error).__name__
                        bucket = _BACKPRESSURE_KINDS.get(type(error))
                        if bucket is not None:
                            results["rejections"][bucket] += 1
                        else:
                            results["other_failures"][name] = (
                                results["other_failures"].get(name, 0) + 1
                            )
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    results["attempted"] += 1
                    if response == expected:
                        results["admitted"] += 1
                        if kind == "interactive":
                            interactive_latencies.append(elapsed)
                    else:
                        results["wrong_answers"] += 1
        finally:
            pool.close()

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    results["qps_admitted"] = (
        results["admitted"] / elapsed if elapsed else 0.0
    )
    results["interactive_latency"] = _latency_block(interactive_latencies)
    return results


def _run_hot_client(server_address, stop, out):
    """One identity, no pacing: the token bucket must do the pacing."""
    pool = ConnectionPool(
        server_address, size=1, seed=999, client_id="hot"
    )
    frame = QueryRequest("no-such-address").serialize()
    try:
        while not stop.is_set():
            try:
                _request(pool, frame)
                out["admitted"] += 1
            except RateLimitedError:
                out["ratelimited"] += 1
            except BackpressureError as error:
                bucket = _BACKPRESSURE_KINDS.get(type(error), "queue_full")
                out[bucket] = out.get(bucket, 0) + 1
            except ReproError as error:
                name = type(error).__name__
                out.setdefault("other", {})
                out["other"][name] = out["other"].get(name, 0) + 1
        out["pool_wait_seconds"] = pool.stats["backpressure_wait_seconds"]
        out["pool_signals"] = pool.stats["backpressure_signals"]
    finally:
        pool.close()


def _scrape_metrics(metrics_address):
    host, port = metrics_address
    with urllib.request.urlopen(
        f"http://{host}:{port}/metrics", timeout=10.0
    ) as response:
        body = response.read().decode("utf-8")
    return body, parse_metrics(body)


def main() -> int:
    print(f"building the honest twin ({BLOCKS} blocks x {TXS} txs)...")
    node, probe = _honest_node()
    frames = _build_workload_frames(node, probe)

    process, server_address, metrics_address = _spawn_daemon()
    print(
        f"daemon up at {server_address[0]}:{server_address[1]} "
        f"(metrics {metrics_address[0]}:{metrics_address[1]})"
    )
    hot_stats = {"admitted": 0, "ratelimited": 0}
    try:
        print(
            f"burst: {REQUESTS} requests, {CLIENTS} identities, "
            f"queue {QUEUE_DEPTH}, rate limit {RATE_LIMIT}/s"
        )
        stop = threading.Event()
        hot_thread = threading.Thread(
            target=_run_hot_client, args=(server_address, stop, hot_stats)
        )
        hot_thread.start()
        try:
            burst = _phase_burst(frames, server_address)
        finally:
            # Keep the hot client alive a floor duration so the rate
            # limit demonstrably engages even on tiny smoke runs.
            time.sleep(max(0.0, HOT_SECONDS - 0.0))
            stop.set()
            hot_thread.join(30.0)

        metrics_text, metrics = _scrape_metrics(metrics_address)
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(30.0)
        except subprocess.TimeoutExpired:
            process.kill()

    client_rejections = dict(burst["rejections"])
    client_rejections["ratelimited"] += hot_stats.get("ratelimited", 0)
    client_rejections["shed"] += hot_stats.get("shed", 0)
    client_rejections["queue_full"] += hot_stats.get("queue_full", 0)

    server_counters = {
        "ratelimited": metrics.get("lvq_ratelimited_total", 0.0),
        "shed": metrics.get("lvq_shed_total", 0.0),
        "queue_full": metrics.get("lvq_queue_full_total", 0.0),
    }
    counters_account = all(
        int(server_counters[key]) == client_rejections[key]
        for key in server_counters
    )
    total_rejected = sum(client_rejections.values())
    admitted_total = burst["admitted"] + hot_stats["admitted"]
    # Admitted traffic = everything that passed admission; any wrong
    # answer or non-backpressure failure counts against availability.
    unexplained = sum(burst["other_failures"].values()) + sum(
        hot_stats.get("other", {}).values()
    )
    availability_admitted = admitted_total / max(
        1, admitted_total + burst["wrong_answers"] + unexplained
    )
    shedding_engaged = (
        client_rejections["shed"] + client_rejections["queue_full"] > 0
        and metrics.get("lvq_admission_transitions_total", 0.0) > 0
    )
    metrics_parseable = (
        len(metrics) > 10
        and "lvq_queue_depth" in metrics
        and "lvq_admission_state" in metrics
        and "lvq_requests_completed_total" in metrics
    )
    p99_ms = burst["interactive_latency"]["p99_ms"]

    enforced = REQUESTS >= GATE_MIN_REQUESTS
    target = {
        "gate_min_requests": GATE_MIN_REQUESTS,
        "gate_interactive_p99_ms": GATE_INTERACTIVE_P99_MS,
        "enforced": enforced,
        "admitted_availability_1": availability_admitted == 1.0,
        "hot_client_rate_limited": hot_stats["ratelimited"] > 0,
        "staged_shedding_engaged": shedding_engaged,
        "interactive_p99_within_gate": p99_ms <= GATE_INTERACTIVE_P99_MS,
        "rejections_accounted": counters_account,
        "metrics_parseable": metrics_parseable,
    }
    target["met"] = all(
        target[key]
        for key in (
            "admitted_availability_1",
            "hot_client_rate_limited",
            "staged_shedding_engaged",
            "interactive_p99_within_gate",
            "rejections_accounted",
            "metrics_parseable",
        )
    )

    report = {
        "schema": "lvq-bench-overload/v1",
        "params": {
            "blocks": BLOCKS,
            "txs_per_block": TXS,
            "clients": CLIENTS,
            "requests": REQUESTS,
            "rate_limit": RATE_LIMIT,
            "queue_depth": QUEUE_DEPTH,
            "workers": WORKERS,
            "seed": SEED,
        },
        "burst": burst,
        "hot_client": hot_stats,
        "rejections_client_observed": client_rejections,
        "rejections_server_counters": {
            key: int(value) for key, value in server_counters.items()
        },
        "availability_admitted": availability_admitted,
        "metrics_sample": {
            key: metrics[key]
            for key in sorted(metrics)
            if key.startswith(
                (
                    "lvq_admission",
                    "lvq_shed",
                    "lvq_ratelimited",
                    "lvq_queue",
                    "lvq_requests",
                )
            )
        },
        "target": target,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")

    print(
        f"\nburst  : {burst['admitted']}/{burst['attempted']} admitted "
        f"({burst['qps_admitted']:.1f} qps)  interactive p50 "
        f"{burst['interactive_latency']['p50_ms']:.2f} ms  "
        f"p99 {p99_ms:.2f} ms"
    )
    print(
        f"refused: shed={client_rejections['shed']} "
        f"ratelimited={client_rejections['ratelimited']} "
        f"queue_full={client_rejections['queue_full']} "
        f"(total {total_rejected}; server counters "
        f"{report['rejections_server_counters']})"
    )
    print(
        f"hot    : {hot_stats['admitted']} admitted, "
        f"{hot_stats['ratelimited']} rate limited, waited "
        f"{hot_stats.get('pool_wait_seconds', 0.0):.2f}s on hints"
    )
    print(
        f"metrics: {len(metrics)} series, transitions="
        f"{int(metrics.get('lvq_admission_transitions_total', 0))}"
    )
    print(f"availability (admitted traffic): {availability_admitted:.4f}")
    if not target["met"]:
        failing = [
            key
            for key, value in target.items()
            if value is False and key not in ("met", "enforced")
        ]
        print(f"FAIL: overload gate not met ({', '.join(failing)})")
        return 1
    print("overload gate met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
