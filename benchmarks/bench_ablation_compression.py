"""Ablation: does wire-level encoding change the paper's comparison?

The paper reports raw result sizes.  PR 6 adds two wire stages below the
result encoding: the §8.1 blob-table aggregation (dedupes BMT branch
nodes, SMT siblings, and repeated tx bytes) and per-frame zlib
compression.  One could ask whether these erase LVQ's advantage over the
strawman.  They do not: both systems' results are BF-dominated and
compress by similar factors, and LVQ's filters sit *deeper* in the fill
range (merged BMT nodes approach 50% fill, maximum entropy), so the
codec helps the strawman more in ratio but never closes the gap.

Four levels are measured per system/probe:

* ``raw``      — the PR 5 per-fragment encoding (the oracle path);
* ``agg``      — the §8.1 aggregated re-encoding, uncompressed;
* ``raw+z``    — the raw encoding behind the per-frame zlib codec;
* ``agg+z``    — aggregation then the codec: what the wire actually pays.
"""

from _common import fig12_configs, write_report

from repro.analysis.report import format_bytes, render_table
from repro.node.transport import compress_frame
from repro.query.aggregate import batch_of_result, encode_aggregated_batch


def _levels(result, config):
    raw = result.serialize(config)
    agg = encode_aggregated_batch(batch_of_result(result), config)
    return {
        "raw": len(raw),
        "agg": len(agg),
        "raw+z": len(compress_frame(raw)),
        "agg+z": len(compress_frame(agg)),
    }


def test_ablation_compression(benchmark, bench_workload, cache):
    configs = fig12_configs()
    probes = ("Addr1", "Addr6")
    rows = []
    sizes = {}
    for label in ("strawman", "lvq"):
        config = configs[label]
        for probe in probes:
            address = bench_workload.probe_addresses[probe]
            levels = _levels(cache.result(config, address), config)
            sizes[(label, probe)] = levels
            rows.append(
                [
                    label,
                    probe,
                    format_bytes(levels["raw"]),
                    format_bytes(levels["agg"]),
                    format_bytes(levels["raw+z"]),
                    format_bytes(levels["agg+z"]),
                    f"{levels['agg+z'] / levels['raw']:.2f}",
                ]
            )

    text = render_table(
        ["System", "Address", "Raw", "Agg", "Raw+z", "Agg+z", "wire/raw"],
        rows,
    )
    write_report("ablation_compression", text)

    for levels in sizes.values():
        # The codec always wins on these BF-dominated frames...
        assert levels["agg+z"] < levels["raw"]
        assert levels["raw+z"] < levels["raw"]
        # ...and aggregation never balloons a frame by more than the
        # blob-table's worst-case slot overhead (~2%).
        assert levels["agg"] < levels["raw"] * 1.02
    # LVQ stays far ahead of the strawman at every level.
    assert (
        sizes[("lvq", "Addr1")]["agg+z"] * 2
        < sizes[("strawman", "Addr1")]["agg+z"]
    )

    config = configs["lvq"]
    address = bench_workload.probe_addresses["Addr6"]
    result = cache.result(config, address)
    benchmark(
        lambda: compress_frame(
            encode_aggregated_batch(batch_of_result(result), config)
        )
    )
