"""Ablation: does generic compression change the paper's comparison?

The paper reports raw result sizes.  Bloom filters at moderate fill are
compressible (a fill ratio f costs only H(f) bits of entropy per bit),
so one could ask whether zlib over the wire would erase LVQ's advantage
over the strawman.  It does not: both systems' results are BF-dominated
and compress by similar factors, and LVQ's filters sit *deeper* in the
fill range (merged BMT nodes approach 50% fill, maximum entropy), so
compression helps the strawman more in ratio but never closes the gap.
"""

import zlib

from _common import fig12_configs, write_report

from repro.analysis.report import format_bytes, render_table


def test_ablation_compression(benchmark, bench_workload, cache):
    configs = fig12_configs()
    probes = ("Addr1", "Addr6")
    rows = []
    sizes = {}
    for label in ("strawman", "lvq"):
        config = configs[label]
        for probe in probes:
            address = bench_workload.probe_addresses[probe]
            raw = cache.result(config, address).serialize(config)
            packed = zlib.compress(raw, level=6)
            sizes[(label, probe)] = (len(raw), len(packed))
            rows.append(
                [
                    label,
                    probe,
                    format_bytes(len(raw)),
                    format_bytes(len(packed)),
                    f"{len(packed) / len(raw):.2f}",
                ]
            )

    text = render_table(
        ["System", "Address", "Raw", "zlib", "ratio"], rows
    )
    write_report("ablation_compression", text)

    # Everything compresses somewhat (filters are not full-entropy)...
    for raw, packed in sizes.values():
        assert packed < raw
    # ...but LVQ stays far ahead of the strawman even after compression.
    assert (
        sizes[("lvq", "Addr1")][1] * 2 < sizes[("strawman", "Addr1")][1]
    )

    config = configs["lvq"]
    address = bench_workload.probe_addresses["Addr6"]
    raw = cache.result(config, address).serialize(config)
    benchmark(lambda: zlib.compress(raw, level=6))
