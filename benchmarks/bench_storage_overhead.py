"""Ablation: Challenge-1 light-node storage per system (§IV-A1).

Not a numbered figure in the paper, but the quantitative backbone of its
motivation: a strawman header carries the whole filter (KBs per block at
paper scale, ~100x the 80-byte Bitcoin header), while LVQ adds a constant
64 bytes of commitments regardless of filter size.
"""

from _common import bf_bytes, fig12_configs, write_report

from repro.analysis.report import format_bytes, render_table
from repro.analysis.sizing import storage_table
from repro.query.config import SystemConfig


def test_storage_overhead(benchmark, bench_workload, cache):
    labelled = []
    configs = dict(fig12_configs())
    configs["strawman_header_bf"] = SystemConfig.strawman_header_bf(
        bf_bytes=bf_bytes(10)
    )
    for label, config in configs.items():
        labelled.append((label, cache.system(config).headers()))

    rows = storage_table(labelled)
    text = render_table(
        ["System", "Blocks", "Total", "Overhead/block", "vs Bitcoin"],
        [
            [
                row["system"],
                row["blocks"],
                format_bytes(row["total_bytes"]),
                f"{row['per_block_overhead']}B",
                f"{row['vs_bitcoin']:.2f}x",
            ]
            for row in rows
        ],
    )
    write_report("storage_overhead", text)

    by_name = {row["system"]: row for row in rows}
    # LVQ headers: constant 64B of commitments.
    assert by_name["lvq"]["per_block_overhead"] == 64
    assert by_name["lvq_no_smt"]["per_block_overhead"] == 32
    # The original strawman stores the whole filter per header.
    assert by_name["strawman_header_bf"]["per_block_overhead"] == bf_bytes(10)
    # Header-BF strawman costs several times more storage than LVQ.
    assert (
        by_name["strawman_header_bf"]["total_bytes"]
        > 3 * by_name["lvq"]["total_bytes"]
    )

    headers = cache.system(configs["lvq"]).headers()
    benchmark(lambda: sum(h.size_bytes() for h in headers))
