"""Shared constants and helpers for the benchmark harness (non-fixture).

See ``benchmarks/conftest.py`` for the session fixtures and the scaling
conventions; this module holds everything bench modules import directly.
"""

from __future__ import annotations

import os
import pathlib

from repro.analysis.sizing import paper_equivalent_bf_bytes
from repro.query.config import SystemConfig

#: Chain length; the paper evaluates 4096 mainnet blocks.
BENCH_BLOCKS = int(os.environ.get("LVQ_BENCH_BLOCKS", "1024"))
#: Background transactions per block (~96 unique addresses each).
BENCH_TXS = int(os.environ.get("LVQ_BENCH_TXS", "40"))
#: Unique addresses per block the BF scaling assumes (measured).
ADDRESSES_PER_BLOCK = 96
#: Number of BF hash functions (DESIGN.md §2: matches the FP rate the
#: paper's Challenge-2 arithmetic implies).
NUM_HASHES = 3

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Fig 13/14/15 sweep, in paper KiB.
BF_SWEEP_KIB = (10, 30, 50, 100, 200, 500)


def bf_bytes(paper_kib: float) -> int:
    """Our-scale filter size for a paper-KiB label."""
    return paper_equivalent_bf_bytes(paper_kib, ADDRESSES_PER_BLOCK)


def write_report(name: str, text: str) -> None:
    """Print a table and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} (blocks={BENCH_BLOCKS}) ===")
    print(text)


def fig12_configs():
    """§VII-B: 10KB filters for the non-BMT systems, 30KB + M=all-blocks
    for the BMT systems."""
    return {
        "strawman": SystemConfig.strawman(
            bf_bytes=bf_bytes(10), num_hashes=NUM_HASHES
        ),
        "lvq_no_bmt": SystemConfig.lvq_no_bmt(
            bf_bytes=bf_bytes(10), num_hashes=NUM_HASHES
        ),
        "lvq_no_smt": SystemConfig.lvq_no_smt(
            bf_bytes=bf_bytes(30),
            segment_len=BENCH_BLOCKS,
            num_hashes=NUM_HASHES,
        ),
        "lvq": SystemConfig.lvq(
            bf_bytes=bf_bytes(30),
            segment_len=BENCH_BLOCKS,
            num_hashes=NUM_HASHES,
        ),
    }


def lvq_config_for_kib(paper_kib: float) -> SystemConfig:
    return SystemConfig.lvq(
        bf_bytes=bf_bytes(paper_kib),
        segment_len=BENCH_BLOCKS,
        num_hashes=NUM_HASHES,
    )
