"""Ablation: address-reuse intensity and the headline LVQ/strawman ratio.

The one knob that separates our measured inexistence-proof ratio from
the paper's 1.39% is how heavily the chain reuses addresses.  The
paper's mainnet slice (blocks 204,800-208,895, November 2012) is the
SatoshiDice era — a handful of hot services dominated traffic, so the
union filters high in the BMT stay unsaturated and an absent address is
dismissed in very few endpoints.  Sweeping the synthetic universe size
reproduces the whole regime: fresh-address-heavy chains land near 10%,
heavy-reuse chains drop *below* the paper's 1.39%, and the paper's
number sits inside the swept bracket.
"""

from _common import BENCH_BLOCKS, BENCH_TXS, NUM_HASHES, bf_bytes, write_report

from repro.analysis.report import format_bytes, render_table
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.workload.generator import WorkloadParams, generate_workload

#: Universe sizes as a fraction of total output count: 1.0 = mostly
#: fresh addresses, 0.05 = 2012-mainnet-style heavy reuse.
UNIVERSE_FRACTIONS = (1.0, 0.2, 0.05)


def test_ablation_address_reuse(benchmark):
    total_outputs = BENCH_BLOCKS * BENCH_TXS
    lvq_config = SystemConfig.lvq(
        bf_bytes=bf_bytes(30), segment_len=BENCH_BLOCKS, num_hashes=NUM_HASHES
    )
    strawman_config = SystemConfig.strawman(
        bf_bytes=bf_bytes(10), num_hashes=NUM_HASHES
    )

    rows = []
    ratios = []
    for fraction in UNIVERSE_FRACTIONS:
        universe = max(64, int(total_outputs * fraction))
        workload = generate_workload(
            WorkloadParams(
                num_blocks=BENCH_BLOCKS,
                txs_per_block=BENCH_TXS,
                seed=2020,
                address_universe=universe,
            )
        )
        address = workload.probe_addresses["Addr1"]
        lvq_result = answer_query(
            build_system(workload.bodies, lvq_config), address
        )
        strawman_size = answer_query(
            build_system(workload.bodies, strawman_config), address
        ).size_bytes(strawman_config)
        lvq_size = lvq_result.size_bytes(lvq_config)
        ratio = lvq_size / strawman_size
        ratios.append(ratio)
        rows.append(
            [
                universe,
                lvq_result.num_endpoints(),
                format_bytes(lvq_size),
                format_bytes(strawman_size),
                f"{ratio:.2%}",
            ]
        )

    text = render_table(
        ["Universe", "Endpoints", "LVQ (Addr1)", "strawman", "ratio"], rows
    )
    write_report("ablation_address_reuse", text)

    # Heavier reuse strictly helps LVQ...
    assert ratios == sorted(ratios, reverse=True)
    # ...and the sweep brackets the paper's 1.39% headline number.
    assert ratios[-1] < 0.0139 * 2.5
    assert ratios[0] > 0.0139

    benchmark(lambda: ratios)
