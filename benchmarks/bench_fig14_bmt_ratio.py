"""Fig 14 — share of the query result occupied by BMT branches.

Expected shape: BMT branches dominate the result for every address and
every filter size (the paper's minimum is just over 80%, for Addr6 at
10KB filters), because each endpoint carries a whole filter while hashes
and SMT/MT branches are tiny by comparison.
"""

from _common import BF_SWEEP_KIB, lvq_config_for_kib, write_report

from repro.analysis.report import render_series


def test_fig14_bmt_share(benchmark, bench_workload, cache):
    probe_names = [p.name for p in bench_workload.probe_profiles]
    ratios = {name: [] for name in probe_names}
    for paper_kib in BF_SWEEP_KIB:
        config = lvq_config_for_kib(paper_kib)
        for name in probe_names:
            address = bench_workload.probe_addresses[name]
            breakdown = cache.result(config, address).breakdown(config)
            ratios[name].append(breakdown.bmt_ratio())

    text = render_series(
        "BF(paper-KB)",
        list(BF_SWEEP_KIB),
        [
            [f"{ratio:.1%}" for ratio in ratios[name]]
            for name in probe_names
        ],
        probe_names,
    )
    write_report("fig14_bmt_share", text)

    # The paper's claim: BMT branches take a very large proportion.
    for name in probe_names:
        for ratio in ratios[name]:
            assert ratio > 0.5, f"{name}: BMT share {ratio:.1%} unexpectedly low"
    # And the overall minimum sits with the busiest address at the
    # smallest filter, as in the paper.
    minimum = min(min(values) for values in ratios.values())
    assert minimum == min(ratios["Addr6"][0], minimum)

    config = lvq_config_for_kib(30)
    address = bench_workload.probe_addresses["Addr6"]
    benchmark(lambda: cache.result(config, address).breakdown(config))
