"""Ablation: number of BF hash functions k (the paper leaves it at a
btcd default; DESIGN.md fixes k = 3 and this bench justifies the choice).

More hash functions sharpen each filter (fewer per-filter false
positives) but saturate merged BMT filters faster, pushing endpoints
down the tree.  The sweep shows result size and endpoint count per k.
"""

from _common import BENCH_BLOCKS, bf_bytes, write_report

from repro.analysis.report import format_bytes, render_series
from repro.query.config import SystemConfig
from repro.query.prover import answer_query

K_SWEEP = (1, 2, 3, 5, 8)


def test_ablation_num_hashes(benchmark, bench_workload, cache):
    probes = ("Addr1", "Addr4", "Addr6")
    sizes = {name: [] for name in probes}
    endpoints = {name: [] for name in probes}
    for k in K_SWEEP:
        config = SystemConfig.lvq(
            bf_bytes=bf_bytes(30), segment_len=BENCH_BLOCKS, num_hashes=k
        )
        for name in probes:
            address = bench_workload.probe_addresses[name]
            result = cache.result(config, address)
            sizes[name].append(result.size_bytes(config))
            endpoints[name].append(result.num_endpoints())

    text = render_series(
        "k",
        list(K_SWEEP),
        [[format_bytes(v) for v in sizes[name]] for name in probes]
        + [[str(v) for v in endpoints[name]] for name in probes],
        [f"size:{name}" for name in probes]
        + [f"endpoints:{name}" for name in probes],
    )
    write_report("ablation_num_hashes", text)

    # The busy address's endpoint count is activity-bound: k barely moves it.
    low, high = min(endpoints["Addr6"]), max(endpoints["Addr6"])
    assert high <= 2 * low
    # For the absent address no k in the sweep should be catastrophically
    # worse than the best (the tradeoff is shallow around the optimum).
    best = min(sizes["Addr1"])
    assert max(sizes["Addr1"]) <= 12 * best

    config = SystemConfig.lvq(
        bf_bytes=bf_bytes(30), segment_len=BENCH_BLOCKS, num_hashes=3
    )
    system = cache.system(config)
    address = bench_workload.probe_addresses["Addr1"]
    benchmark.pedantic(
        lambda: answer_query(system, address), rounds=3, iterations=1
    )
