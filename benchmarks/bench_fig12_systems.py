"""Fig 12 — query result size: strawman vs LVQ variants, six addresses.

The paper's headline figure.  Expected shape (paper, 4096 blocks, real
mainnet data):

* strawman / LVQ-no-BMT: flat ≈ blocks x BF (41.12MB for Addr1), growing
  slightly with activity;
* LVQ-no-SMT: tiny for sparse addresses, exploding (integral blocks) for
  busy ones;
* LVQ: orders of magnitude below the strawman for sparse addresses
  (0.57MB vs 41.12MB for Addr1 = 1.39%), converging toward — and for the
  busiest two addresses slightly above — LVQ-no-BMT.
"""

import pytest

from _common import fig12_configs, write_report

from repro.analysis.report import format_bytes, render_table
from repro.query.verifier import verify_result


def test_fig12_result_sizes(benchmark, bench_workload, cache):
    configs = fig12_configs()
    probe_names = [p.name for p in bench_workload.probe_profiles]
    sizes = {
        label: {
            name: cache.result(
                config, bench_workload.probe_addresses[name]
            ).size_bytes(config)
            for name in probe_names
        }
        for label, config in configs.items()
    }

    rows = []
    for name in probe_names:
        rows.append(
            [name]
            + [format_bytes(sizes[label][name]) for label in configs]
        )
    text = render_table(["Address", *configs.keys()], rows)
    write_report("fig12_result_sizes", text)

    # Shape assertions (see module docstring).
    assert sizes["lvq"]["Addr1"] * 10 < sizes["strawman"]["Addr1"]
    assert sizes["lvq"]["Addr1"] == sizes["lvq_no_smt"]["Addr1"]
    assert sizes["lvq_no_smt"]["Addr6"] > 1.5 * sizes["lvq"]["Addr6"]
    for name in probe_names:
        assert sizes["lvq_no_bmt"][name] < 2 * sizes["strawman"][name]
        assert sizes["lvq"][name] < sizes["strawman"][name] * 1.5

    # Benchmark the full verified LVQ query for the busiest address.
    config = configs["lvq"]
    system = cache.system(config)
    headers = system.headers()
    address = bench_workload.probe_addresses["Addr6"]

    def full_round_trip():
        from repro.query.prover import answer_query

        result = answer_query(system, address)
        return verify_result(result, headers, config, address)

    history = benchmark.pedantic(full_round_trip, rounds=3, iterations=1)
    truth = bench_workload.history_of(address)
    assert len(history.transactions) == len(truth)


@pytest.mark.parametrize("probe", ["Addr1", "Addr6"])
def test_fig12_headline_ratio(benchmark, bench_workload, cache, probe):
    """LVQ-vs-strawman size ratio per address (the 1.39% claim)."""
    configs = fig12_configs()
    address = bench_workload.probe_addresses[probe]
    lvq_size = cache.result(configs["lvq"], address).size_bytes(configs["lvq"])
    strawman_size = cache.result(configs["strawman"], address).size_bytes(
        configs["strawman"]
    )
    ratio = lvq_size / strawman_size
    write_report(
        f"fig12_ratio_{probe.lower()}",
        f"LVQ / strawman result size for {probe}: "
        f"{format_bytes(lvq_size)} / {format_bytes(strawman_size)} "
        f"= {ratio:.2%}",
    )
    if probe == "Addr1":
        assert ratio < 0.10  # paper: 1.39% at full scale
    benchmark(
        lambda: cache.result(configs["lvq"], address).size_bytes(configs["lvq"])
    )
