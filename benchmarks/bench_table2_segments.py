"""Table II — binary division of the last partial segment (§V-B).

Regenerates the paper's three example rows (M = 256, tips 464/465/466)
and benchmarks the covering-span computation at chain scale.
"""

from _common import BENCH_BLOCKS, write_report

from repro.analysis.report import render_table
from repro.chain.segments import covering_spans, segment_spans


def _power_series(length: int) -> str:
    terms = [f"2^{i}" for i in reversed(range(length.bit_length())) if length >> i & 1]
    return " + ".join(terms)


def test_table2_segment_division(benchmark):
    rows = []
    for tip in (464, 465, 466):
        tail = segment_spans(tip, 256)[1:]  # sub-segments after [1,256]
        rows.append(
            [
                tip,
                _power_series(tip - 256),
                ", ".join(f"[{start},{end}]" for start, end in tail),
            ]
        )
    text = render_table(["h_t", "Power series", "Sub-segments"], rows)
    write_report("table2_segment_division", text)

    assert rows[0][2] == "[257,384], [385,448], [449,464]"
    assert rows[1][2] == "[257,384], [385,448], [449,464], [465,465]"
    assert rows[2][2] == "[257,384], [385,448], [449,464], [465,466]"

    benchmark(
        lambda: [covering_spans(tip, 256) for tip in range(1, BENCH_BLOCKS + 1)]
    )
