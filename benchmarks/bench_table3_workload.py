"""Table III — the six probe addresses and their footprints.

The paper queries six mainnet addresses; the synthetic workload injects
six probes with the same (scaled) footprints.  This bench verifies the
injected footprints exactly and benchmarks workload generation.
"""

from _common import BENCH_BLOCKS, write_report

from repro.analysis.report import render_table
from repro.workload.generator import WorkloadParams, generate_workload
from repro.workload.profiles import scaled_probe_profiles


def test_table3_probe_footprints(benchmark, bench_workload):
    profiles = scaled_probe_profiles(BENCH_BLOCKS)
    rows = []
    for index, profile in enumerate(profiles, start=1):
        address = bench_workload.probe_addresses[profile.name]
        tx_count, block_count = bench_workload.footprint_of(address)
        rows.append([index, address, tx_count, block_count])
        assert (tx_count, block_count) == (
            profile.tx_count,
            profile.block_count,
        ), f"{profile.name} footprint drifted"
    text = render_table(["Index", "Address", "#Tx", "#Block"], rows)
    write_report("table3_probe_footprints", text)

    benchmark.pedantic(
        lambda: generate_workload(
            WorkloadParams(num_blocks=64, txs_per_block=20, seed=1)
        ),
        rounds=3,
        iterations=1,
    )
