"""Session fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper
(DESIGN.md §4 maps them).  Conventions:

* the synthetic chain defaults to 1024 blocks at a documented ~1/21 linear
  scale of the paper's workload (~96 unique addresses per block instead of
  ~2048); set ``LVQ_BENCH_BLOCKS=4096`` for a full-scale run;
* Bloom filter sizes are specified in *paper KiB* and converted with
  :func:`repro.analysis.sizing.paper_equivalent_bf_bytes`, preserving
  bits-per-element so fill ratios and endpoint counts match the paper;
* every module prints its rows (run with ``-s`` to see them) and writes
  them to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md;
* built systems and query results are cached per session, since several
  figures share the same sweep.
"""

from __future__ import annotations

import pytest

from _common import BENCH_BLOCKS, BENCH_TXS
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.workload.generator import WorkloadParams, generate_workload


@pytest.fixture(scope="session")
def bench_workload():
    return generate_workload(
        WorkloadParams(
            num_blocks=BENCH_BLOCKS, txs_per_block=BENCH_TXS, seed=2020
        )
    )


class _SystemCache:
    """Build-once cache for (config → BuiltSystem) and query results."""

    def __init__(self, workload) -> None:
        self.workload = workload
        self._systems = {}
        self._results = {}

    @staticmethod
    def _key(config: SystemConfig):
        return (
            config.kind,
            config.bf_bytes,
            config.num_hashes,
            config.segment_len,
        )

    def system(self, config: SystemConfig):
        key = self._key(config)
        if key not in self._systems:
            self._systems[key] = build_system(self.workload.bodies, config)
        return self._systems[key]

    def result(self, config: SystemConfig, address: str):
        key = self._key(config) + (address,)
        if key not in self._results:
            self._results[key] = answer_query(self.system(config), address)
        return self._results[key]


@pytest.fixture(scope="session")
def cache(bench_workload):
    return _SystemCache(bench_workload)
