"""Ablation: proof generation and verification latency per system.

The paper evaluates only communication cost; this bench records the
compute cost of the same queries so downstream users can judge
full-node (prove) and light-node (verify) CPU budgets.
"""

import pytest

from _common import fig12_configs, write_report

from repro.analysis.report import render_table
from repro.query.prover import answer_query
from repro.query.verifier import verify_result

_PROBES = ("Addr1", "Addr6")


@pytest.mark.parametrize("label", list(fig12_configs()))
@pytest.mark.parametrize("probe", _PROBES)
def test_prove_latency(benchmark, bench_workload, cache, label, probe):
    config = fig12_configs()[label]
    system = cache.system(config)
    address = bench_workload.probe_addresses[probe]
    result = benchmark.pedantic(
        lambda: answer_query(system, address), rounds=3, iterations=1
    )
    assert result.size_bytes(config) > 0


@pytest.mark.parametrize("label", list(fig12_configs()))
@pytest.mark.parametrize("probe", _PROBES)
def test_verify_latency(benchmark, bench_workload, cache, label, probe):
    config = fig12_configs()[label]
    system = cache.system(config)
    headers = system.headers()
    address = bench_workload.probe_addresses[probe]
    result = cache.result(config, address)
    history = benchmark.pedantic(
        lambda: verify_result(result, headers, config, address),
        rounds=3,
        iterations=1,
    )
    truth = bench_workload.history_of(address)
    assert len(history.transactions) == len(truth)


def test_build_index_latency(benchmark, bench_workload):
    """Indexing cost per block on the full node (one-off, amortizable)."""
    from repro.query.builder import build_system

    config = fig12_configs()["lvq"]
    bodies = bench_workload.bodies[:129]  # 128 blocks + genesis

    system = benchmark.pedantic(
        lambda: build_system(bodies, _small_config(config)), rounds=3, iterations=1
    )
    assert system.tip_height == 128
    write_report(
        "latency_notes",
        "prove/verify latencies recorded by pytest-benchmark (see its "
        "table); index build benchmarked over 128 blocks.",
    )


def _small_config(config):
    from repro.query.config import SystemConfig

    return SystemConfig.lvq(
        bf_bytes=config.bf_bytes, segment_len=128, num_hashes=config.num_hashes
    )
