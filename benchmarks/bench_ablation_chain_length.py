"""Ablation: how the LVQ advantage scales with chain length.

Not a paper figure, but the mechanism behind its headline number: the
strawman's cost is linear in the chain (one filter per block), while
LVQ's inexistence proof grows only with the BMT endpoint count —
sublinear for an absent address.  Sweeping the chain length shows the
gap: LVQ stays in the low single-digit percent of the strawman at every
length (endpoint counts fluctuate, so the ratio is noisy but bounded),
trending toward the paper's 1.39% at its 4096-block scale.
"""

from _common import NUM_HASHES, bf_bytes, write_report

from repro.analysis.report import format_bytes, render_table
from repro.query.builder import build_system
from repro.query.config import SystemConfig
from repro.query.prover import answer_query
from repro.workload.generator import WorkloadParams, generate_workload

LENGTH_SWEEP = (64, 128, 256, 512)


def test_ablation_chain_length(benchmark):
    rows = []
    ratios = []
    for num_blocks in LENGTH_SWEEP:
        workload = generate_workload(
            WorkloadParams(num_blocks=num_blocks, txs_per_block=20, seed=2020)
        )
        address = workload.probe_addresses["Addr1"]
        lvq_config = SystemConfig.lvq(
            bf_bytes=bf_bytes(30), segment_len=num_blocks, num_hashes=NUM_HASHES
        )
        strawman_config = SystemConfig.strawman(
            bf_bytes=bf_bytes(10), num_hashes=NUM_HASHES
        )
        lvq_size = answer_query(
            build_system(workload.bodies, lvq_config), address
        ).size_bytes(lvq_config)
        strawman_size = answer_query(
            build_system(workload.bodies, strawman_config), address
        ).size_bytes(strawman_config)
        ratio = lvq_size / strawman_size
        ratios.append(ratio)
        rows.append(
            [
                num_blocks,
                format_bytes(strawman_size),
                format_bytes(lvq_size),
                f"{ratio:.2%}",
            ]
        )

    text = render_table(
        ["Blocks", "strawman (Addr1)", "LVQ (Addr1)", "LVQ/strawman"], rows
    )
    write_report("ablation_chain_length", text)

    # LVQ stays far below the strawman at every length, and the absolute
    # LVQ cost grows far slower than the chain (8x more blocks, <8x cost).
    assert max(ratios) < 0.15
    assert ratios[-1] < 0.10

    workload = generate_workload(
        WorkloadParams(num_blocks=64, txs_per_block=20, seed=2020)
    )
    config = SystemConfig.lvq(
        bf_bytes=bf_bytes(30), segment_len=64, num_hashes=NUM_HASHES
    )
    benchmark.pedantic(
        lambda: build_system(workload.bodies, config), rounds=3, iterations=1
    )
