"""Ablation: batch queries amortize the strawman's per-block filters.

The paper queries one address at a time.  A wallet or analyst usually
holds many; on hash-committed non-BMT systems each extra address in a
batch reuses the already-shipped filters, so N addresses cost ~1 filter
set instead of N.  On BMT systems batches are concatenations (each
address needs its own multiproof), which this bench also quantifies.
"""

from _common import bf_bytes, fig12_configs, write_report

from repro.analysis.report import format_bytes, render_table
from repro.query.batch import answer_batch_query, verify_batch_result


def test_ablation_batch(benchmark, bench_workload, cache):
    configs = fig12_configs()
    addresses = list(bench_workload.probe_addresses.values())

    rows = []
    savings = {}
    for label in ("strawman", "lvq_no_bmt", "lvq"):
        config = configs[label]
        system = cache.system(config)
        individual = sum(
            cache.result(config, address).size_bytes(config)
            for address in addresses
        )
        batch = answer_batch_query(system, addresses)
        batch_size = batch.size_bytes(config)
        # Every batch must verify to the same histories.
        histories = verify_batch_result(
            batch, system.headers(), config, addresses
        )
        assert len(histories) == len(addresses)
        savings[label] = individual / batch_size
        rows.append(
            [
                label,
                format_bytes(individual),
                format_bytes(batch_size),
                f"{individual / batch_size:.2f}x",
            ]
        )

    text = render_table(
        ["System", "6 individual queries", "one batch", "saving"], rows
    )
    write_report("ablation_batch", text)

    # Shared filters dominate the non-BMT systems: near-6x batch saving.
    assert savings["strawman"] > 3.0
    assert savings["lvq_no_bmt"] > 3.0
    # BMT batches are concatenations: no meaningful saving.
    assert savings["lvq"] < 1.2

    config = configs["strawman"]
    system = cache.system(config)
    benchmark.pedantic(
        lambda: answer_batch_query(system, addresses), rounds=3, iterations=1
    )
