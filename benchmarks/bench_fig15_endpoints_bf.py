"""Fig 15 — number of BMT endpoint nodes vs BF size.

Expected shape: per address, the endpoint count stays roughly stable as
the filter grows (it depends on where in the tree checks start to
succeed, which moves only logarithmically in the filter size), which is
why Fig 13's growth is attributable to filter bytes, not endpoint counts.
"""

from _common import BF_SWEEP_KIB, NUM_HASHES, lvq_config_for_kib, write_report

from repro.analysis.fpm import expected_endpoints
from repro.analysis.report import render_series
from _common import ADDRESSES_PER_BLOCK, BENCH_BLOCKS, bf_bytes


def test_fig15_endpoint_counts(benchmark, bench_workload, cache):
    probe_names = [p.name for p in bench_workload.probe_profiles]
    counts = {name: [] for name in probe_names}
    for paper_kib in BF_SWEEP_KIB:
        config = lvq_config_for_kib(paper_kib)
        for name in probe_names:
            address = bench_workload.probe_addresses[name]
            counts[name].append(cache.result(config, address).num_endpoints())

    model = [
        f"{expected_endpoints(BENCH_BLOCKS, ADDRESSES_PER_BLOCK, bf_bytes(kib) * 8, NUM_HASHES):.1f}"
        for kib in BF_SWEEP_KIB
    ]
    text = render_series(
        "BF(paper-KB)",
        list(BF_SWEEP_KIB),
        [[str(v) for v in counts[name]] for name in probe_names]
        + [model],
        probe_names + ["model(absent)"],
    )
    write_report("fig15_endpoint_counts", text)

    # Stability where the count is pinned by on-chain activity: the busy
    # addresses' endpoint counts barely move across a 50x filter sweep
    # (the paper plots nearly flat lines per address).
    for name in ("Addr4", "Addr5", "Addr6"):
        low, high = min(counts[name]), max(counts[name])
        assert high <= 2 * low, f"{name}: {counts[name]}"
    # Sparse addresses can only improve as filters grow (checks succeed
    # higher in the tree); the count must never increase with BF size.
    for name in ("Addr1", "Addr2"):
        for previous, current in zip(counts[name], counts[name][1:]):
            assert current <= previous + 8, f"{name}: {counts[name]}"
    # Busier addresses need more endpoints at every filter size.
    for column in range(len(BF_SWEEP_KIB)):
        assert counts["Addr6"][column] > counts["Addr1"][column]

    config = lvq_config_for_kib(30)
    system = cache.system(config)
    address = bench_workload.probe_addresses["Addr1"]
    from repro.chain.address import address_item

    tree = system.bmt_tree(BENCH_BLOCKS)
    benchmark(lambda: tree.find_endpoints(address_item(address)))
