"""Table I — blocks merged by each height (Algorithm 1).

Regenerates the paper's Table I rows verbatim and benchmarks the merge
computation over a full segment.
"""

from _common import write_report

from repro.analysis.report import render_table
from repro.chain.segments import merge_set


def test_table1_merge_sets(benchmark):
    rows = []
    for height in range(1, 9):
        blocks = merge_set(height, 4096)
        rows.append(
            [
                height,
                len(blocks),
                ", ".join(str(b) for b in blocks),
            ]
        )
    text = render_table(["Height", "#Blocks", "Blocks to be merged"], rows)
    write_report("table1_merge_sets", text)

    # Paper's Table I, exactly.
    assert [row[2] for row in rows] == [
        "1",
        "1, 2",
        "3",
        "1, 2, 3, 4",
        "5",
        "5, 6",
        "7",
        "1, 2, 3, 4, 5, 6, 7, 8",
    ]

    benchmark(lambda: [merge_set(h, 4096) for h in range(1, 4097)])
