"""Wire-efficiency benchmark: PR 5 encoding vs aggregation + compression.

For every fig12 system this harness answers the all-probes batch query
and measures four encodings of the same response:

* ``plain``   — the PR 5 per-fragment ``BatchQueryResult`` bytes (the
  byte-equivalence oracle path);
* ``agg``     — the §8.1 blob-table aggregated re-encoding;
* ``plain_z`` — the plain bytes behind the per-frame zlib codec;
* ``agg_z``   — aggregation then the codec: what the wire actually pays.

Before any size is recorded, the aggregated bytes are decoded and
re-serialized through the plain path and must reproduce it
byte-for-byte — a smaller frame that decodes to a different batch is
worthless.  The same four levels are swept across the fig13/fig15 BF
sizes and the fig16 segment lengths (single-address results per probe
cover the fig14 composition angle), plus the header-sync frames (full
vs §8.2 delta vs delta+z).

Results land in ``BENCH_wire.json`` at the repo root; EXPERIMENTS.md
documents the schema.  The acceptance gate: at paper scale the
aggregated+compressed batch response must be ≥25% smaller than the
plain encoding on *every* fig12 system.

Run: ``PYTHONPATH=src python benchmarks/bench_wire.py``
(``LVQ_BENCH_BLOCKS=64`` for the CI smoke run; the gate is enforced at
every scale — the reduction is size-dominated, not timing-dominated, so
even the smoke chain must clear it).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _common import (
    BENCH_BLOCKS,
    BENCH_TXS,
    NUM_HASHES,
    bf_bytes,
    fig12_configs,
    lvq_config_for_kib,
)
from repro.node.messages import DeltaHeadersResponse, HeadersResponse
from repro.node.transport import compress_frame
from repro.query.aggregate import (
    batch_of_result,
    decode_aggregated_batch,
    encode_aggregated_batch,
)
from repro.query.batch import answer_batch_query
from repro.query.builder import build_system
from repro.query.prover import answer_query
from repro.workload.generator import WorkloadParams, generate_workload

#: The acceptance gate: agg+z must shave at least this fraction off the
#: plain batch encoding on every fig12 system.
REQUIRED_REDUCTION = 0.25

#: fig13/fig15 BF sweep trimmed to the ends and the paper's pick.
BF_KIB_SWEEP = (10, 30, 100, 500)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_wire.json"


def _levels(plain: bytes, aggregated: bytes) -> dict:
    plain_z = compress_frame(plain)
    agg_z = compress_frame(aggregated)
    return {
        "plain": len(plain),
        "agg": len(aggregated),
        "plain_z": len(plain_z),
        "agg_z": len(agg_z),
        "reduction": 1.0 - len(agg_z) / len(plain) if plain else 0.0,
    }


def _batch_levels(system, addresses) -> dict:
    """Sizes for the all-probes batch, with the oracle equivalence check."""
    config = system.config
    batch = answer_batch_query(system, addresses)
    plain = batch.serialize(config)
    aggregated = encode_aggregated_batch(batch, config)
    decoded = decode_aggregated_batch(aggregated, config)
    if decoded.serialize(config) != plain:
        raise AssertionError(
            f"{config.kind.value}: aggregated round-trip is not "
            "byte-identical to the plain encoding"
        )
    return _levels(plain, aggregated)


def _single_levels(system, address) -> dict:
    config = system.config
    result = answer_query(system, address)
    return _levels(
        result.serialize(config),
        encode_aggregated_batch(batch_of_result(result), config),
    )


def _header_levels(system) -> dict:
    """Full-chain header sync: legacy frame vs §8.2 delta frame."""
    headers = system.headers()[1:]
    full = HeadersResponse(1, headers).serialize()
    delta = DeltaHeadersResponse(1, headers).serialize()
    return {
        "headers": len(headers),
        "full": len(full),
        "delta": len(delta),
        "delta_z": len(compress_frame(delta)),
        "reduction": 1.0 - len(compress_frame(delta)) / len(full),
    }


def main() -> int:
    params = WorkloadParams(
        num_blocks=BENCH_BLOCKS, txs_per_block=BENCH_TXS, seed=2020
    )
    print(f"bench_wire: blocks={BENCH_BLOCKS} txs/block={BENCH_TXS}")
    workload = generate_workload(params)
    probes = workload.probe_addresses
    addresses = list(probes.values())

    report = {
        "schema": "lvq-bench-wire/v1",
        "params": {
            "blocks": BENCH_BLOCKS,
            "txs_per_block": BENCH_TXS,
            "num_hashes": NUM_HASHES,
            "seed": 2020,
        },
        "fig12": {},
        "fig13_bf_sweep": {},
        "fig16_segment_sweep": {},
        "headers": {},
        "target": {"required_reduction": REQUIRED_REDUCTION},
    }

    # -- fig12: the four evaluated systems, batch + per-probe singles ----
    for name, config in fig12_configs().items():
        start = time.perf_counter()
        system = build_system(workload.bodies, config)
        entry = {
            "build_seconds": time.perf_counter() - start,
            "batch": _batch_levels(system, addresses),
            "single": {
                probe: _single_levels(system, address)
                for probe, address in probes.items()
            },
        }
        report["fig12"][name] = entry
        row = entry["batch"]
        print(
            f"  fig12 {name:10s} plain={row['plain']:10,} "
            f"agg+z={row['agg_z']:10,} reduction={row['reduction']:.1%}"
        )

    # -- fig13/fig15 workload: LVQ across the BF-size sweep --------------
    for paper_kib in BF_KIB_SWEEP:
        system = build_system(workload.bodies, lvq_config_for_kib(paper_kib))
        report["fig13_bf_sweep"][str(paper_kib)] = {
            "bf_bytes": bf_bytes(paper_kib),
            "batch": _batch_levels(system, addresses),
        }

    # -- fig16 workload: LVQ across segment lengths ----------------------
    from repro.query.config import SystemConfig

    segment_len = 1
    sweep = []
    while segment_len <= BENCH_BLOCKS:
        sweep.append(segment_len)
        segment_len *= 4
    if sweep[-1] != BENCH_BLOCKS:
        sweep.append(BENCH_BLOCKS)
    for segment_len in sweep:
        config = SystemConfig.lvq(
            bf_bytes=bf_bytes(30),
            segment_len=segment_len,
            num_hashes=NUM_HASHES,
        )
        system = build_system(workload.bodies, config)
        report["fig16_segment_sweep"][str(segment_len)] = {
            "batch": _batch_levels(system, addresses)
        }

    # -- header sync: full vs delta frames -------------------------------
    for name, config in fig12_configs().items():
        system = build_system(workload.bodies, config)
        report["headers"][name] = _header_levels(system)

    target = report["target"]
    target["reductions"] = {
        name: entry["batch"]["reduction"]
        for name, entry in report["fig12"].items()
    }
    target["met"] = all(
        reduction >= REQUIRED_REDUCTION
        for reduction in target["reductions"].values()
    )

    OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")

    for name, row in report["headers"].items():
        print(
            f"  headers {name:10s} full={row['full']:10,} "
            f"delta+z={row['delta_z']:10,} reduction={row['reduction']:.1%}"
        )

    if not target["met"]:
        worst = min(target["reductions"].items(), key=lambda kv: kv[1])
        print(
            f"FAIL: {worst[0]} batch reduction {worst[1]:.1%} is below "
            f"the required {REQUIRED_REDUCTION:.0%}"
        )
        return 1
    print(
        "target: min reduction "
        f"{min(target['reductions'].values()):.1%} >= "
        f"{REQUIRED_REDUCTION:.0%} (met)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
